//! `facade-coverage` — panic-safe `try_` twins for public entry points.
//!
//! PR 6's failure model (DESIGN.md §9) wraps every entry point in a typed
//! `try_` facade so a service embedding the library never has to
//! `catch_unwind` itself.  This rule keeps that surface closed over the
//! `pram` and `core` crates:
//!
//! * every `pub fn` whose doc comment declares a `# Panics` section (the
//!   rustdoc contract for a panicking API) and is not itself a `try_`
//!   facade must have a `try_<name>` twin defined in the same crate;
//! * symmetrically, every `try_<name>` must shadow a real `<name>` — a
//!   facade whose panicking twin was renamed away is dead API.
//!
//! The scan is crate-wide, so the twin may live in any module of the crate
//! (e.g. `coarsest_partition` in `lib.rs`, dispatching facade in the same
//! file, panicking engines in submodules).
//!
//! The serving layer (`crates/service`) sits under the same rule with a
//! crate-specific twist: its request handlers follow a `handle_<kind>`
//! naming contract, and every `pub fn handle_*` must return a typed
//! `Result` — a handler can never silently become panicking API, because
//! the worker's dispatch maps handler errors onto wire-level `ErrorReply`s.

use crate::scan::{FileScan, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// Rule identifier.
pub const RULE: &str = "facade-coverage";

/// Crates under the facade contract, identified by path prefix.
pub const FACADE_CRATES: &[&str] = &[
    "crates/pram/src/",
    "crates/core/src/",
    "crates/service/src/",
];

/// The crate whose `pub fn handle_*` request handlers must return `Result`.
pub const HANDLER_CRATE: &str = "crates/service/src/";

fn crate_of(rel_path: &str) -> Option<&'static str> {
    FACADE_CRATES
        .iter()
        .find(|p| rel_path.starts_with(**p))
        .copied()
}

/// Whether the fn signature starting at `idx` returns a `Result`, scanning
/// across wrapped lines until the body opens (or the declaration ends).
fn signature_returns_result(scan: &FileScan, idx: usize) -> bool {
    let mut sig = String::new();
    for line in scan.lines.iter().skip(idx) {
        sig.push_str(&line.code);
        sig.push(' ');
        if line.code.contains('{') || line.code.contains(';') {
            break;
        }
    }
    match sig.find("->") {
        Some(arrow) => sig[arrow..].contains("Result<"),
        None => false,
    }
}

fn fn_name_after(code: &str, kw_pos: usize) -> Option<String> {
    let rest = code[kw_pos + 3..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Per-crate accumulated state, fed file by file.
#[derive(Default)]
pub struct FacadeState {
    /// crate prefix -> all defined fn names.
    defined: BTreeMap<&'static str, BTreeSet<String>>,
    /// crate prefix -> (name, file, line) of pub fns documented `# Panics`.
    panicking: BTreeMap<&'static str, Vec<(String, String, usize)>>,
    /// crate prefix -> (name, file, line) of try_-prefixed fns.
    facades: BTreeMap<&'static str, Vec<(String, String, usize)>>,
    /// Service handlers violating the `handle_* -> Result` contract.
    handler_findings: Vec<Finding>,
}

impl FacadeState {
    /// Record one file's definitions.
    pub fn ingest(&mut self, scan: &FileScan) {
        let Some(krate) = crate_of(&scan.rel_path) else {
            return;
        };
        let mut doc_has_panics = false;
        for (idx, line) in scan.lines.iter().enumerate() {
            let raw_trim = line.raw.trim_start();
            if raw_trim.starts_with("///") || raw_trim.starts_with("//!") {
                if line.comment.contains("# Panics") {
                    doc_has_panics = true;
                }
                continue;
            }
            if line.is_code_blank() || line.is_attr_only() {
                continue; // attributes/blank lines between docs and the item
            }
            let code = &line.code;
            if let Some(kw) = code.find("fn ") {
                let word_ok = kw == 0
                    || !code[..kw]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if word_ok {
                    if let Some(name) = fn_name_after(code, kw) {
                        self.defined.entry(krate).or_default().insert(name.clone());
                        let is_pub = code.trim_start().starts_with("pub ");
                        let record = (name.clone(), scan.rel_path.clone(), idx + 1);
                        if let Some(base) = name.strip_prefix("try_") {
                            if !base.is_empty() && !scan.in_test[idx] {
                                self.facades.entry(krate).or_default().push(record);
                            }
                        } else if is_pub
                            && doc_has_panics
                            && !scan.in_test[idx]
                            && !code.contains("-> Result<")
                            && !scan.allowed(RULE, idx + 1)
                        {
                            self.panicking.entry(krate).or_default().push(record);
                        }
                        if krate == HANDLER_CRATE
                            && is_pub
                            && name.starts_with("handle_")
                            && !scan.in_test[idx]
                            && !scan.allowed(RULE, idx + 1)
                            && !signature_returns_result(scan, idx)
                        {
                            self.handler_findings.push(Finding {
                                file: scan.rel_path.clone(),
                                line: idx + 1,
                                rule: RULE,
                                message: format!(
                                    "service request handler `{name}` must return a \
                                     typed `Result` — handlers feed the wire-level \
                                     error mapping and may never panic through"
                                ),
                            });
                        }
                    }
                }
            }
            doc_has_panics = false;
        }
    }

    /// Emit the findings once every file has been ingested.
    #[must_use]
    pub fn finish(self) -> Vec<Finding> {
        let mut out = self.handler_findings;
        for (krate, fns) in &self.panicking {
            let defined = self.defined.get(krate).cloned().unwrap_or_default();
            for (name, file, line) in fns {
                if !defined.contains(&format!("try_{name}")) {
                    out.push(Finding {
                        file: file.clone(),
                        line: *line,
                        rule: RULE,
                        message: format!(
                            "public panicking entry point `{name}` (documented \
                             `# Panics`) has no `try_{name}` facade in this \
                             crate — add the typed-error twin (DESIGN.md §9)"
                        ),
                    });
                }
            }
        }
        for (krate, fns) in &self.facades {
            let defined = self.defined.get(krate).cloned().unwrap_or_default();
            for (name, file, line) in fns {
                let base = name.trim_start_matches("try_");
                if !defined.contains(base) {
                    out.push(Finding {
                        file: file.clone(),
                        line: *line,
                        rule: RULE,
                        message: format!(
                            "facade `{name}` has no `{base}` twin — the \
                             panicking entry point it wraps is gone"
                        ),
                    });
                }
            }
        }
        out
    }
}

//! `workspace-pairing` — checkout/return discipline for `Workspace`
//! scratch buffers.
//!
//! Every `Workspace::take_*` checkout is an RAII `Scratch` guard whose
//! drop returns the buffer to the pool; `stats().outstanding() == 0` is the
//! leak-test invariant (PR 3 closed an accounting leak of exactly this
//! class by hand).  Two source shapes defeat the protocol:
//!
//! 1. a checkout that is neither bound (`let buf = ws.take_u32(n)`) nor
//!    handed off (argument to an `*_into` sink, explicit `drop`, or a
//!    `return`) — the guard drops on the same statement, so the checkout
//!    was dead weight at best and a stale-alias bug at worst;
//! 2. `mem::forget` / `ManuallyDrop` applied in first-party code — the
//!    buffer never returns, `outstanding()` never reconciles, and the
//!    warm-pool charge determinism the bench harness relies on is gone.

use crate::scan::{FileScan, Finding};

/// Rule identifier.
pub const RULE: &str = "workspace-pairing";

const TAKE_CALLS: &[&str] = &[
    "take_u8(",
    "take_u32(",
    "take_i64(",
    "take_u64(",
    "take_recs(",
    "take_pairs(",
    "take::<",
];

/// Text of the statement enclosing byte `pos` of line `idx`: everything from
/// the previous statement terminator (`;`, `{`, `}`) up to `pos`.
fn statement_prefix(scan: &FileScan, idx: usize, pos: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let head = &scan.lines[idx].code[..pos];
    if let Some(term) = head.rfind([';', '{', '}']) {
        return head[term + 1..].to_string();
    }
    parts.push(head.to_string());
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let code = &scan.lines[i].code;
        if let Some(term) = code.rfind([';', '{', '}']) {
            parts.push(code[term + 1..].to_string());
            break;
        }
        parts.push(code.clone());
    }
    parts.reverse();
    parts.join(" ")
}

fn word_in(text: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(p) = text[start..].find(word) {
        let abs = start + p;
        let before_ok = abs == 0
            || !text[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = !text[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// Run the rule over one scanned file.
pub fn check(scan: &FileScan) -> Vec<Finding> {
    let mut out = Vec::new();
    // The Workspace implementation itself defines the take_* family.
    let is_impl = scan.rel_path.ends_with("crates/pram/src/workspace.rs");
    for (idx, line) in scan.lines.iter().enumerate() {
        if scan.in_test[idx] {
            continue;
        }
        let code = &line.code;
        let line_no = idx + 1;

        if (code.contains("mem::forget(") || code.contains("ManuallyDrop::new("))
            && !scan.allowed(RULE, line_no)
        {
            out.push(Finding {
                file: scan.rel_path.clone(),
                line: line_no,
                rule: RULE,
                message: "mem::forget/ManuallyDrop defeats the Scratch \
                          return protocol — workspace accounting can never \
                          reconcile a forgotten checkout"
                    .to_string(),
            });
        }

        if is_impl {
            continue;
        }
        for pat in TAKE_CALLS {
            let mut search = 0;
            while let Some(p) = code[search..].find(pat) {
                let pos = search + p;
                search = pos + pat.len();
                // Skip definitions (`pub fn take_u32(...)`) and paths that
                // merely *name* the method.
                let head = &code[..pos];
                if head.contains("fn ") {
                    continue;
                }
                let stmt = statement_prefix(scan, idx, pos);
                let bound = word_in(&stmt, "let") || word_in(&stmt, "return");
                let handed_off = stmt.contains("_into(") || stmt.contains("drop(");
                if bound || handed_off || scan.allowed(RULE, line_no) {
                    continue;
                }
                out.push(Finding {
                    file: scan.rel_path.clone(),
                    line: line_no,
                    rule: RULE,
                    message: format!(
                        "workspace checkout `{}` is neither let-bound nor \
                         handed off (return / `_into` sink / drop) — the \
                         Scratch guard dies on this statement",
                        pat.trim_end_matches('(')
                    ),
                });
            }
        }
    }
    out
}

//! `unsafe-safety` / `unsafe-attr` — unsafe hygiene.
//!
//! * `unsafe-safety`: every `unsafe` occurrence (block, fn, impl) must carry
//!   an adjacent `// SAFETY:` comment stating the invariant that makes it
//!   sound — on the same line, or in the contiguous comment/attribute block
//!   immediately above.  The repo's unsafe surface is almost entirely
//!   disjoint-index raw-pointer scatters behind `SendPtr`; the comment is
//!   where the disjointness argument lives, and the Miri CI job is where it
//!   is executed.
//! * `unsafe-attr`: every first-party crate root must declare
//!   `#![deny(unsafe_op_in_unsafe_fn)]` (or the stronger
//!   `#![forbid(unsafe_code)]` where the crate is unsafe-free), so an
//!   `unsafe fn` body never gets an implicit unsafe scope.

use crate::scan::{FileScan, Finding};

/// Rule identifier for the SAFETY-comment check.
pub const RULE_SAFETY: &str = "unsafe-safety";
/// Rule identifier for the crate-root attribute check.
pub const RULE_ATTR: &str = "unsafe-attr";

fn has_word(code: &str, word: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        start = after;
    }
    None
}

/// `unsafe-safety`: every `unsafe` token needs an adjacent `SAFETY:` comment.
pub fn check_safety(scan: &FileScan) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in scan.lines.iter().enumerate() {
        if scan.in_test[idx] || has_word(&line.code, "unsafe").is_none() {
            continue;
        }
        let line_no = idx + 1;
        if scan.allowed(RULE_SAFETY, line_no) {
            continue;
        }
        // Same-line trailing comment?
        let mut covered = line.comment.contains("SAFETY:");
        // Otherwise scan upward through the contiguous block of comment-only,
        // attribute-only, and continuation lines directly above.
        let mut i = idx;
        while !covered && i > 0 {
            i -= 1;
            let above = &scan.lines[i];
            if above.comment.contains("SAFETY:") {
                covered = true;
                break;
            }
            if !(above.is_code_blank() || above.is_attr_only()) {
                break;
            }
            if above.is_code_blank() && above.comment.is_empty() {
                break; // a truly blank line ends the adjacent block
            }
        }
        if !covered {
            out.push(Finding {
                file: scan.rel_path.clone(),
                line: line_no,
                rule: RULE_SAFETY,
                message: "`unsafe` without an adjacent `// SAFETY:` comment — \
                          state the invariant that makes this sound (not a \
                          restatement of the code)"
                    .to_string(),
            });
        }
    }
    out
}

/// Crate roots and the attribute discipline each must declare.
/// `forbid(unsafe_code)` is required where the crate is unsafe-free (the
/// stronger gate also satisfies `deny(unsafe_op_in_unsafe_fn)` trivially).
pub const CRATE_ROOTS: &[(&str, bool)] = &[
    // (crate root, must forbid unsafe_code entirely)
    ("crates/pram/src/lib.rs", true),
    ("crates/bench/src/lib.rs", true),
    ("crates/service/src/lib.rs", true),
    ("crates/xtask/src/lib.rs", true),
    ("src/lib.rs", true),
    ("crates/parprim/src/lib.rs", false),
    ("crates/pseudoforest/src/lib.rs", false),
    ("crates/strings/src/lib.rs", false),
    ("crates/core/src/lib.rs", false),
];

/// `unsafe-attr`: check one crate root's inner attributes.
pub fn check_attr(scan: &FileScan) -> Vec<Finding> {
    // `src/lib.rs` (the umbrella crate) is a suffix of every crate root, so
    // resolve by exact path match against the repo-relative entries.
    let Some(&(_, must_forbid)) = CRATE_ROOTS.iter().find(|(root, _)| scan.rel_path == *root)
    else {
        return Vec::new();
    };
    let forbids = scan
        .lines
        .iter()
        .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    let denies = scan
        .lines
        .iter()
        .any(|l| l.code.contains("#![deny(unsafe_op_in_unsafe_fn)]"));
    let mut out = Vec::new();
    if must_forbid && !forbids {
        out.push(Finding {
            file: scan.rel_path.clone(),
            line: 1,
            rule: RULE_ATTR,
            message: "crate is unsafe-free: declare #![forbid(unsafe_code)] \
                      at the crate root"
                .to_string(),
        });
    } else if !must_forbid && !denies && !forbids {
        out.push(Finding {
            file: scan.rel_path.clone(),
            line: 1,
            rule: RULE_ATTR,
            message: "crate root must declare \
                      #![deny(unsafe_op_in_unsafe_fn)] (or \
                      #![forbid(unsafe_code)] once unsafe-free)"
                .to_string(),
        });
    }
    out
}

//! `trace-span` — every engine pass opens a trace span.
//!
//! The observability contract (DESIGN.md §12) is that a traced run covers
//! *every* engine pass: each function that announces a pass via
//! `sfcp_pram::faults::on_engine_pass()` must also open a span with
//! `ctx.span("…")` in the same function, so the phase tree, the Perfetto
//! export, and the bench span summaries never silently lose a pass.  The
//! span guard is a single relaxed atomic load when tracing is disabled
//! (the same zero-cost pattern as the fault hook itself), so there is no
//! performance reason to omit it.
//!
//! The rule fires on any non-test first-party function that calls
//! `on_engine_pass()` without a `.span(` call; new passes therefore ship
//! instrumented or carry a justified `lint:allow(trace-span)`.

use crate::scan::{FileScan, Finding};

/// Rule identifier.
pub const RULE: &str = "trace-span";

/// Files exempt from the rule: the fault-injection layer defines (and
/// self-tests) the hook itself and has no `Ctx` to span on.
const EXEMPT_FILES: &[&str] = &["crates/pram/src/faults.rs"];

/// Run the rule over one scanned file.
pub fn check(scan: &FileScan) -> Vec<Finding> {
    if EXEMPT_FILES.iter().any(|f| scan.rel_path.ends_with(f)) {
        return Vec::new();
    }
    // First occurrence of the pass hook per enclosing function, and the set
    // of functions that open a span.  Name-level grouping per file is exact
    // here: the engine modules never split one pass across same-named fns.
    let mut pass_at: Vec<(&str, usize)> = Vec::new();
    let mut spanned: Vec<&str> = Vec::new();
    for (idx, line) in scan.lines.iter().enumerate() {
        if scan.in_test[idx] {
            continue;
        }
        let code = &line.code;
        let func = scan.fn_at(idx);
        if code.contains("on_engine_pass()") && !pass_at.iter().any(|&(f, _)| f == func) {
            pass_at.push((func, idx + 1));
        }
        if code.contains(".span(") && !spanned.contains(&func) {
            spanned.push(func);
        }
    }
    let mut out = Vec::new();
    for (func, line_no) in pass_at {
        if spanned.contains(&func) || scan.allowed(RULE, line_no) {
            continue;
        }
        out.push(Finding {
            file: scan.rel_path.clone(),
            line: line_no,
            rule: RULE,
            message: format!(
                "`{}` announces an engine pass without opening a trace span — \
                 add `let _span = ctx.span(\"…\");` so the phase tree covers \
                 the pass (disabled cost is one relaxed load), or justify \
                 with lint:allow({RULE})",
                if func.is_empty() {
                    "<item scope>"
                } else {
                    func
                }
            ),
        });
    }
    out
}

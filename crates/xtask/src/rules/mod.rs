//! The sfcp-lint rule set, one module per rule (rule ids are each module's
//! `RULE` constant; the escape hatch is `lint:allow(<rule>): justification`).

pub mod alloc_hot_path;
pub mod bench_engines;
pub mod charge_taint;
pub mod facade_coverage;
pub mod trace_span;
pub mod unsafe_hygiene;
pub mod workspace_pairing;

//! `charge-taint` — the machine-blind-charges gate.
//!
//! DESIGN.md ("Charge discipline") promises that tracked work/depth never
//! depends on the host: `tests/charge_determinism.rs` pins bit-identical
//! charges across engines, thread counts, and mocked cache sizes.  PR 7
//! threaded the probed `sfcp_pram::Topology` into every physical tuning
//! constant, which makes the hazard one careless call wide: any *charged*
//! code path that reads the probe can silently turn a model quantity into a
//! host-dependent one.
//!
//! This rule forbids `topology()` / `Topology::` reads everywhere except an
//! explicit allowlist of **physical-plan** functions — the places whose
//! DESIGN.md contract is "physical only: results and charges are identical
//! on every host".  Adding a new topology consumer therefore requires either
//! extending the allowlist here (reviewed, with the charge-neutrality
//! argument) or a justified inline `lint:allow(charge-taint)`.

use crate::scan::{FileScan, Finding};

/// Rule identifier.
pub const RULE: &str = "charge-taint";

/// Functions allowed to consult the topology probe, as
/// (file-path suffix, function name) pairs; `"*"` allows a whole file.
///
/// Every entry must be charge-neutral.  The cross-check is
/// `tests/charge_determinism.rs`, which mocks the topology (tiny-LLC /
/// huge-LLC / many-core) across the full engine grid and asserts
/// bit-identical charges — none of the functions below may feed the tracker.
const ALLOWLIST: &[(&str, &str)] = &[
    // The probe layer itself.
    ("crates/pram/src/topology.rs", "*"),
    // Ctx construction snapshots the probe and derives the physical task
    // grain; the accessors hand the snapshot out without charging.
    ("crates/pram/src/ctx.rs", "new"),
    ("crates/pram/src/ctx.rs", "untracked"),
    ("crates/pram/src/ctx.rs", "topology"),
    ("crates/pram/src/ctx.rs", "with_topology"),
    // Auto-scatter resolution: footprint vs probed LLC (DESIGN.md §7,
    // "Footprint-adaptive selection") — both arms charge identically.
    ("crates/pram/src/ctx.rs", "scatter_engine_for"),
    // Radix block plan: the physical clamp on the *model* plan; charges
    // always use `model_block_plan` (DESIGN.md §3).
    ("crates/parprim/src/intsort.rs", "block_plan"),
    // Scatter tile sizing from the probed cache line (DESIGN.md §7).
    ("crates/parprim/src/scatter.rs", "new"),
    // CSR build-regime selection and write-combined counting threshold;
    // the charge is a fixed documented model in both regimes (DESIGN.md §5).
    ("crates/parprim/src/csr.rs", "direct_build_max_keys"),
    ("crates/parprim/src/csr.rs", "build_csr_direct"),
    // Wavefront lane count for the cache-bucket walker, probed from L1d
    // (DESIGN.md §6); lane count only affects gather overlap, never charges.
    (
        "crates/parprim/src/listrank/bucket.rs",
        "chain_walk_bucketed",
    ),
    (
        "crates/parprim/src/listrank/bucket.rs",
        "cycle_walk_bucketed",
    ),
    // The big-n bench tier prints the probed LLC alongside its rows — a
    // reporting read in an untracked harness.
    ("crates/bench/src/bin/bench_json.rs", "run_bign"),
];

fn allowlisted(rel_path: &str, func: &str) -> bool {
    ALLOWLIST
        .iter()
        .any(|(file, f)| rel_path.ends_with(file) && (*f == "*" || *f == func))
}

/// Run the rule over one scanned file.
pub fn check(scan: &FileScan) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in scan.lines.iter().enumerate() {
        if scan.in_test[idx] {
            continue;
        }
        let code = &line.code;
        if !(code.contains("topology()") || code.contains("Topology::")) {
            continue;
        }
        let func = scan.fn_at(idx);
        if allowlisted(&scan.rel_path, func) {
            continue;
        }
        let line_no = idx + 1;
        if scan.allowed(RULE, line_no) {
            continue;
        }
        out.push(Finding {
            file: scan.rel_path.clone(),
            line: line_no,
            rule: RULE,
            message: format!(
                "topology probe read in `{}` — charged model code must stay \
                 machine-blind; route physical tuning through an allowlisted \
                 plan function (xtask charge_taint.rs) or justify with \
                 lint:allow({RULE})",
                if func.is_empty() {
                    "<item scope>"
                } else {
                    func
                }
            ),
        });
    }
    out
}

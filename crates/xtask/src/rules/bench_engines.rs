//! `bench-engines` — schema check over the committed `BENCH_parprim*.json`
//! engine labels.
//!
//! PR 7 fixed a mislabeled scatter row whose `engines` header claimed the
//! sort-engine pair; this rule makes that class unrepresentable at commit
//! time.  For every row of every `BENCH_parprim*.json` in the repo root:
//!
//! * an `"engines": [a, b]` field must be one of the known engine-set
//!   names (kept in lockstep with `SORT_RANK_LABELS` / `SCATTER_LABELS` in
//!   `crates/bench/src/bin/bench_json.rs`);
//! * `scatter` rows must carry the scatter pair and non-scatter rows the
//!   sort/rank pair — the exact confusion the mislabel was;
//! * a big-n `"engine": x` field must name a single known `ScatterEngine`;
//! * in a schema-2 file (header line `"schema": 2`), every result row must
//!   embed the `"trace"` span/decision summary with both its `"spans"` and
//!   `"decisions"` lists — the observability field the schema bump added.
//!   (Pre-bump files carry no `"schema"` header and are exempt.)
//!
//! The files are line-structured (one row object per line, written by
//! `bench_json`), so a comment/string-blind line scan is exact here.

use crate::scan::Finding;

/// Rule identifier.
pub const RULE: &str = "bench-engines";

/// Known engine-set labels (mirrors `bench_json.rs`; the self-test in
/// `crates/xtask/tests` cross-checks the committed files).
const KNOWN_PAIRS: &[[&str; 2]] = &[["packed", "permutation"], ["direct", "combining"]];
/// Known single-engine labels of the big-n tier (`ScatterEngine` variants).
const KNOWN_SINGLES: &[&str] = &["direct", "combining", "auto"];

fn extract_quoted(list: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = list;
    while let Some(open) = rest.find('"') {
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        out.push(rest[open + 1..open + 1 + close].to_string());
        rest = &rest[open + 2 + close..];
    }
    out
}

fn field_value<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let pos = line.find(field)? + field.len();
    Some(line[pos..].trim_start())
}

/// Check one committed bench JSON file.
#[must_use]
pub fn check(rel_path: &str, contents: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    // Bumped when the header's `"schema": N` line is seen; rows before it
    // (there are none in well-formed output) default to the unversioned
    // pre-trace schema.
    let mut schema: u64 = 1;
    for (idx, line) in contents.lines().enumerate() {
        let line_no = idx + 1;
        if let Some(rest) = field_value(line, "\"schema\":") {
            schema = rest
                .split([',', '}'])
                .next()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(1);
        }
        let name = field_value(line, "\"name\":")
            .map(|v| extract_quoted(v).into_iter().next().unwrap_or_default());

        // Schema 2 rows must carry the span/decision summary.  Only rows
        // (lines with a name) are checked; header lines are exempt.
        if schema >= 2 && name.is_some() {
            let trace = field_value(line, "\"trace\":");
            let complete =
                trace.is_some_and(|t| t.contains("\"spans\":[") && t.contains("\"decisions\":["));
            if !complete {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: RULE,
                    message: format!(
                        "schema-2 row `{}` is missing the \"trace\" summary \
                         (with \"spans\" and \"decisions\" lists) — regenerate \
                         with bench_json, or drop the \"schema\": 2 header",
                        name.clone().unwrap_or_default()
                    ),
                });
            }
        }

        if let Some(rest) = field_value(line, "\"engines\":") {
            let Some(close) = rest.find(']') else {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: RULE,
                    message: "unterminated engines list".to_string(),
                });
                continue;
            };
            let labels = extract_quoted(&rest[..close]);
            let known = KNOWN_PAIRS
                .iter()
                .any(|p| labels.len() == 2 && p[0] == labels[0] && p[1] == labels[1]);
            if !known {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: RULE,
                    message: format!(
                        "engines {labels:?} is not a known engine-set \
                         (expected one of {KNOWN_PAIRS:?})"
                    ),
                });
                continue;
            }
            // Scatter rows measure ScatterEngine columns; everything else
            // measures the sort/rank pair.  (Header lines carry no name.)
            if let Some(name) = name {
                let want_scatter = name == "scatter";
                let is_scatter_pair = labels[0] == "direct";
                if want_scatter != is_scatter_pair {
                    out.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: RULE,
                        message: format!(
                            "row `{name}` labelled {labels:?} — scatter rows \
                             measure [\"direct\", \"combining\"], other rows \
                             [\"packed\", \"permutation\"] (the PR 7 mislabel \
                             class)"
                        ),
                    });
                }
            }
        } else if let Some(rest) = field_value(line, "\"engine\":") {
            let label = extract_quoted(rest).into_iter().next().unwrap_or_default();
            if !KNOWN_SINGLES.contains(&label.as_str()) {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: RULE,
                    message: format!(
                        "engine {label:?} is not a known ScatterEngine label \
                         (expected one of {KNOWN_SINGLES:?})"
                    ),
                });
            }
        }
    }
    out
}

//! `alloc-hot-path` — the zero-allocation contract of the engine hot paths.
//!
//! DESIGN.md §2 ("the workspace") makes per-round allocation a regression:
//! every doubling-style pass checks scratch out of the `Workspace` pools,
//! and the `_into` entry points are the documented zero-allocation surface
//! (the non-`_into` convenience wrappers allocate exactly the returned
//! result, once per run, by contract).  This rule enforces two things in
//! the hot-path modules:
//!
//! 1. inside any `*_into` function: no allocation constructs at all
//!    (`Vec::new`, `Vec::with_capacity`, `vec![…]`, `.to_vec()`,
//!    `.collect::<Vec…>`) — scratch comes from the workspace, output goes
//!    into the caller's buffer;
//! 2. anywhere in a hot-path module: no `.to_vec()` / `.collect::<Vec…>`
//!    — the accidental-copy class that silently duplicates an O(n) array.
//!    Deliberate copies in the allocating baseline engines carry a
//!    justified `lint:allow`.

use crate::scan::{FileScan, Finding};

/// Rule identifier.
pub const RULE: &str = "alloc-hot-path";

/// The hot-path modules: the parprim engine passes and the pseudoforest
/// decomposition passes (ROADMAP "zero-allocation workspace-backed hot
/// paths").
pub const HOT_FILES: &[&str] = &[
    "crates/parprim/src/intsort.rs",
    "crates/parprim/src/rank.rs",
    "crates/parprim/src/scan.rs",
    "crates/parprim/src/compact.rs",
    "crates/parprim/src/csr.rs",
    "crates/parprim/src/euler.rs",
    "crates/parprim/src/scatter.rs",
    "crates/parprim/src/jump.rs",
    "crates/parprim/src/listrank/mod.rs",
    "crates/parprim/src/listrank/wyllie.rs",
    "crates/parprim/src/listrank/ruling.rs",
    "crates/parprim/src/listrank/bucket.rs",
    "crates/pseudoforest/src/cycles.rs",
    "crates/pseudoforest/src/structure.rs",
];

const ALLOC_ANY: &[&str] = &["Vec::new(", "Vec::with_capacity(", "vec!["];
const ALLOC_COPY: &[&str] = &[".to_vec()", ".collect::<Vec"];

/// Run the rule over one scanned file.
pub fn check(scan: &FileScan) -> Vec<Finding> {
    if !HOT_FILES.iter().any(|f| scan.rel_path == *f) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in scan.lines.iter().enumerate() {
        if scan.in_test[idx] {
            continue;
        }
        let code = &line.code;
        let line_no = idx + 1;
        let in_into_fn = scan.fn_at(idx).ends_with("_into");

        let copy_hit = ALLOC_COPY.iter().find(|p| code.contains(**p));
        let ctor_hit = ALLOC_ANY.iter().find(|p| code.contains(**p));
        let hit = match (copy_hit, ctor_hit) {
            (Some(p), _) => Some((*p, true)),
            (None, Some(p)) if in_into_fn => Some((*p, false)),
            _ => None,
        };
        let Some((pat, is_copy)) = hit else { continue };
        if scan.allowed(RULE, line_no) {
            continue;
        }
        let message = if is_copy {
            format!(
                "`{pat}` copies an array in hot-path module — gather into a \
                 workspace checkout instead, or justify the deliberate copy \
                 with lint:allow({RULE})"
            )
        } else {
            format!(
                "`{pat}` inside zero-allocation entry point `{}` — `_into` \
                 functions must draw scratch from the Workspace and write \
                 the caller's buffer",
                scan.fn_at(idx)
            )
        };
        out.push(Finding {
            file: scan.rel_path.clone(),
            line: line_no,
            rule: RULE,
            message,
        });
    }
    out
}

//! Per-file context analysis on top of the lexer: enclosing-function
//! attribution, `#[cfg(test)]` / `#[test]` region tracking, and the
//! `// lint:allow(rule): justification` escape hatch.

use crate::lexer::{scan_source, LineView};

/// A lint finding: machine-readable, deterministic, sortable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (e.g. `charge-taint`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// An inline suppression parsed from `// lint:allow(rule-a, rule-b): why`.
#[derive(Debug, Clone)]
struct Allow {
    rules: Vec<String>,
    /// The 1-based line the suppression applies to (the directive's own line
    /// for trailing comments, the next code line for standalone comments).
    target: usize,
}

/// A scanned file plus everything the rules need to interrogate it.
pub struct FileScan {
    /// Repo-relative path (forward slashes).
    pub rel_path: String,
    /// Line views from the lexer.
    pub lines: Vec<LineView>,
    /// Innermost enclosing function name per line (empty when at item level).
    pub enclosing_fn: Vec<String>,
    /// Whether each line sits inside test code (`#[cfg(test)]` region,
    /// `#[test]` function, or a file under a `tests/` directory).
    pub in_test: Vec<bool>,
    allows: Vec<Allow>,
    /// Findings raised by the scan itself (malformed allow directives).
    pub scan_findings: Vec<Finding>,
}

#[derive(Debug)]
enum Frame {
    Fn(String, u32),
    Test(u32),
}

fn tokenize(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in code.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if !c.is_whitespace() {
                out.push(c.to_string());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl FileScan {
    /// Scan `src` as the file at `rel_path`.  `force_test` marks the whole
    /// file as test code (integration tests under `tests/`).
    #[must_use]
    pub fn new(rel_path: &str, src: &str, force_test: bool) -> Self {
        let lines = scan_source(src);
        let mut enclosing_fn = Vec::with_capacity(lines.len());
        let mut in_test = Vec::with_capacity(lines.len());
        let mut frames: Vec<Frame> = Vec::new();
        let mut depth: u32 = 0;
        let mut pending_fn: Option<String> = None;
        let mut pending_test = false;

        for line in &lines {
            let code = &line.code;
            if code.contains("#[cfg(test")
                || code.contains("#[test]")
                || code.contains("#[cfg(all(test")
            {
                pending_test = true;
            }
            let innermost_fn = |frames: &[Frame]| {
                frames
                    .iter()
                    .rev()
                    .find_map(|f| match f {
                        Frame::Fn(name, _) => Some(name.clone()),
                        Frame::Test(_) => None,
                    })
                    .unwrap_or_default()
            };
            let mut line_fn = innermost_fn(&frames);
            let mut line_test =
                force_test || pending_test || frames.iter().any(|f| matches!(f, Frame::Test(_)));

            let toks = tokenize(code);
            let mut t = 0;
            while t < toks.len() {
                match toks[t].as_str() {
                    "fn" => {
                        if let Some(name) = toks.get(t + 1) {
                            if name
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_alphabetic() || c == '_')
                            {
                                pending_fn = Some(name.clone());
                            }
                        }
                    }
                    "{" => {
                        depth += 1;
                        if pending_test {
                            frames.push(Frame::Test(depth));
                            pending_test = false;
                            pending_fn = None;
                            line_test = true;
                        } else if let Some(name) = pending_fn.take() {
                            line_fn.clone_from(&name);
                            frames.push(Frame::Fn(name, depth));
                        }
                    }
                    "}" => {
                        frames.retain(|f| match f {
                            Frame::Fn(_, d) | Frame::Test(d) => *d != depth,
                        });
                        depth = depth.saturating_sub(1);
                    }
                    ";" => {
                        // A semicolon before any `{` ends a declaration-only
                        // item (`fn f();` in traits, `#[cfg(test)] use x;`).
                        pending_fn = None;
                        pending_test = false;
                    }
                    _ => {}
                }
                t += 1;
            }
            enclosing_fn.push(line_fn);
            in_test.push(line_test);
        }

        let (allows, scan_findings) = parse_allows(rel_path, &lines);
        FileScan {
            rel_path: rel_path.to_string(),
            lines,
            enclosing_fn,
            in_test,
            allows,
            scan_findings,
        }
    }

    /// True when findings of `rule` at 1-based `line` are suppressed by an
    /// adjacent justified `lint:allow` directive.
    #[must_use]
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.target == line && a.rules.iter().any(|r| r == rule))
    }

    /// Enclosing function name for a 0-based line index.
    #[must_use]
    pub fn fn_at(&self, idx: usize) -> &str {
        self.enclosing_fn.get(idx).map_or("", |s| s.as_str())
    }
}

/// Parse every `lint:allow(...)` directive in the file.  Directives must
/// carry a justification (`lint:allow(rule): because …`); a bare directive is
/// itself a finding — the escape hatch is for *documented* exceptions.
fn parse_allows(rel_path: &str, lines: &[LineView]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        // Only a comment that *is* a directive counts — `lint:allow` must
        // open the comment text.  Prose that merely mentions the directive
        // mid-sentence (docs, rule messages) is not a suppression.
        let Some(rest) = line.comment.trim_start().strip_prefix("lint:allow") else {
            continue;
        };
        let parsed = rest.strip_prefix('(').and_then(|r| {
            let close = r.find(')')?;
            let rules: Vec<String> = r[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let after = r[close + 1..].trim_start();
            let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
            Some((rules, justification.to_string()))
        });
        let line_no = idx + 1;
        match parsed {
            Some((rules, justification)) if !rules.is_empty() && !justification.is_empty() => {
                // A standalone comment line suppresses the next code line;
                // a trailing comment suppresses its own line.
                let target = if line.is_code_blank() {
                    lines[idx + 1..]
                        .iter()
                        .position(|l| !l.is_code_blank())
                        .map_or(line_no, |off| line_no + 1 + off)
                } else {
                    line_no
                };
                allows.push(Allow { rules, target });
            }
            _ => findings.push(Finding {
                file: rel_path.to_string(),
                line: line_no,
                rule: "lint-allow",
                message: "malformed lint:allow — use \
                          `lint:allow(rule-id): justification` with a \
                          non-empty justification"
                    .to_string(),
            }),
        }
    }
    (allows, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enclosing_fn_tracks_nesting() {
        let src = "fn outer() {\n    let x = 1;\n    fn inner() {\n        body();\n    }\n    tail();\n}\ntop();\n";
        let s = FileScan::new("t.rs", src, false);
        assert_eq!(s.fn_at(1), "outer");
        assert_eq!(s.fn_at(3), "inner");
        assert_eq!(s.fn_at(5), "outer");
        assert_eq!(s.fn_at(7), "");
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() { a(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { b(); }\n}\nfn live2() { c(); }\n";
        let s = FileScan::new("t.rs", src, false);
        assert!(!s.in_test[0]);
        assert!(s.in_test[1]);
        assert!(s.in_test[3]);
        assert!(!s.in_test[5]);
    }

    #[test]
    fn test_attr_on_fn_marks_its_body() {
        let src = "#[test]\nfn check() {\n    x();\n}\nfn live() { y(); }\n";
        let s = FileScan::new("t.rs", src, false);
        assert!(s.in_test[2]);
        assert!(!s.in_test[4]);
    }

    #[test]
    fn cfg_test_on_use_does_not_leak() {
        let src = "#[cfg(test)]\nuse helper::x;\nfn live() {\n    y();\n}\n";
        let s = FileScan::new("t.rs", src, false);
        assert!(!s.in_test[3], "the `;` must clear the pending test attr");
    }

    #[test]
    fn allow_directive_targets_next_code_line() {
        let src = "// lint:allow(demo-rule): baseline engine allocates by design\nlet v = vec![];\nlet w = vec![];\n";
        let s = FileScan::new("t.rs", src, false);
        assert!(s.allowed("demo-rule", 2));
        assert!(!s.allowed("demo-rule", 3));
        assert!(s.scan_findings.is_empty());
    }

    #[test]
    fn trailing_allow_targets_own_line() {
        let src = "let v = vec![]; // lint:allow(demo-rule): warm-up only\n";
        let s = FileScan::new("t.rs", src, false);
        assert!(s.allowed("demo-rule", 1));
    }

    #[test]
    fn allow_without_justification_is_a_finding() {
        let src = "// lint:allow(demo-rule)\nlet v = vec![];\n";
        let s = FileScan::new("t.rs", src, false);
        assert!(!s.allowed("demo-rule", 2));
        assert_eq!(s.scan_findings.len(), 1);
        assert_eq!(s.scan_findings[0].rule, "lint-allow");
    }

    #[test]
    fn multi_rule_allow() {
        let src = "// lint:allow(rule-a, rule-b): shared justification\ncall();\n";
        let s = FileScan::new("t.rs", src, false);
        assert!(s.allowed("rule-a", 2));
        assert!(s.allowed("rule-b", 2));
    }
}

//! Umbrella crate for the SFCP reproduction workspace.
//!
//! This crate only re-exports the member crates so that the examples and
//! integration tests in the workspace root can use a single dependency.
//! Library users should depend on the individual crates directly:
//!
//! * [`sfcp`] — the coarsest partition solvers (the paper's contribution),
//! * [`sfcp_forest`] — functional graph (pseudo-forest) substrate,
//! * [`sfcp_strings`] — circular string canonization and string sorting,
//! * [`sfcp_parprim`] — parallel primitives (scan, sort, list ranking, Euler tour),
//! * [`sfcp_pram`] — the PRAM work/depth cost model.

pub use sfcp;
pub use sfcp_forest;
pub use sfcp_parprim;
pub use sfcp_pram;
pub use sfcp_strings;

//! Umbrella crate for the SFCP reproduction workspace.
//!
//! This crate only re-exports the member crates so that the examples and
//! integration tests in the workspace root can use a single dependency.
//! Library users should depend on the individual crates directly:
//!
//! * [`sfcp`] — the coarsest partition solvers (the paper's contribution),
//! * [`sfcp_forest`] — functional graph (pseudo-forest) substrate,
//! * [`sfcp_strings`] — circular string canonization and string sorting,
//! * [`sfcp_parprim`] — parallel primitives (scan, sort, list ranking, Euler tour),
//! * [`sfcp_pram`] — the PRAM work/depth cost model,
//! * [`sfcp_service`] — the batched, warm, snapshot-cached serving layer.
//!
//! ## Quickstart
//!
//! The paper's own 16-node example (Fig. 1 / Example 2.2), solved by every
//! algorithm behind the [`sfcp::coarsest_partition`] facade — the runnable
//! twin of `examples/quickstart.rs` (run that one with
//! `cargo run --example quickstart --release`):
//!
//! ```
//! use sfcp_repro::sfcp::{coarsest_partition, Algorithm, Instance, ALL_ALGORITHMS};
//! use sfcp_repro::sfcp_pram::Ctx;
//!
//! let instance = Instance::paper_example();
//! for algorithm in ALL_ALGORITHMS {
//!     let ctx = Ctx::parallel();
//!     let q = coarsest_partition(&ctx, &instance, algorithm);
//!     sfcp_repro::sfcp::verify::assert_valid(&instance, &q);
//!     assert_eq!(q.num_blocks(), 4, "{algorithm:?}");
//!     // Work/depth of the run were tracked on the context:
//!     assert!(ctx.stats().work > 0 && ctx.stats().rounds > 0);
//! }
//!
//! // The paper reports A_Q = [1,2,1,3,2,2,4,4,1,3,4,3,1,2,3,4]; the
//! // parallel algorithm reproduces exactly that partition (Example 3.1).
//! let expected = sfcp_repro::sfcp::Partition::new(
//!     sfcp_repro::sfcp_forest::generators::paper_example_expected_q(),
//! );
//! let ctx = Ctx::parallel();
//! let q = coarsest_partition(&ctx, &instance, Algorithm::Parallel);
//! assert!(q.same_partition(&expected));
//! ```
//!
//! The engine selectors (sort, list ranking, scatter — see the top-level
//! `README.md` and `DESIGN.md`) ride on the context and never change
//! results or tracked charges:
//!
//! ```
//! use sfcp_repro::sfcp::{coarsest_partition, Algorithm, Instance};
//! use sfcp_repro::sfcp_pram::{Ctx, RankEngine, ScatterEngine, SortEngine};
//!
//! let instance = Instance::random(512, 3, 7);
//! let default_engines = Ctx::parallel();
//! let baselines = Ctx::parallel()
//!     .with_sort_engine(SortEngine::Permutation)
//!     .with_rank_engine(RankEngine::RulingSet)
//!     .with_scatter_engine(ScatterEngine::Combining);
//! let a = coarsest_partition(&default_engines, &instance, Algorithm::Parallel);
//! let b = coarsest_partition(&baselines, &instance, Algorithm::Parallel);
//! assert!(a.same_partition(&b));
//! assert_eq!(default_engines.stats(), baselines.stats());
//! ```
//!
//! ## Error handling
//!
//! Every panicking entry point has a fallible `try_` twin returning a typed
//! error; untrusted input never panics, and a failed run leaves the context
//! recovered and reusable (see `DESIGN.md`, "Failure model and recovery"):
//!
//! ```
//! use sfcp_repro::sfcp::{try_coarsest_partition, Algorithm, DecomposeError, Instance};
//! use sfcp_repro::sfcp_forest::{try_decompose, FunctionalGraph};
//! use sfcp_repro::sfcp_forest::cycles::CycleMethod;
//! use sfcp_repro::sfcp_pram::{Ctx, Error};
//!
//! // Malformed input surfaces as a typed error, not a panic.
//! assert!(matches!(
//!     FunctionalGraph::try_new(vec![0, 9, 1]),
//!     Err(Error::OutOfRange { index: 1, value: 9, .. })
//! ));
//! assert!(matches!(
//!     Instance::try_new(vec![0, 1], vec![0]),
//!     Err(Error::LengthMismatch { .. })
//! ));
//!
//! // Well-formed input decomposes and solves fallibly.
//! let ctx = Ctx::parallel();
//! let g = FunctionalGraph::try_new(vec![1, 2, 0, 0]).unwrap();
//! let d = try_decompose(&ctx, &g, CycleMethod::Euler).unwrap();
//! assert_eq!(d.num_cycles(), 1);
//!
//! let instance = Instance::paper_example();
//! let q = try_coarsest_partition(&ctx, &instance, Algorithm::Parallel).unwrap();
//! assert_eq!(q.num_blocks(), 4);
//!
//! // DecomposeError separates bad input (permanent) from failed runs
//! // (retryable after the built-in Ctx::recover).
//! let err: DecomposeError = Error::NotAPermutation { duplicate: 3 }.into();
//! assert!(!err.is_retryable());
//! ```

#![forbid(unsafe_code)]

pub use sfcp;
pub use sfcp_forest;
pub use sfcp_parprim;
pub use sfcp_pram;
pub use sfcp_service;
pub use sfcp_strings;

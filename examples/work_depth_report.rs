//! Work/depth report: measure the PRAM-style cost of every algorithm on a
//! sweep of random instances and print the table the paper's Section 1
//! comparison is phrased in (operations and parallel time), together with the
//! Brent-predicted speedups.
//!
//! Run with: `cargo run --example work_depth_report --release`

use sfcp::{coarsest_partition, Algorithm, Instance, ALL_ALGORITHMS};
use sfcp_pram::{BrentModel, Ctx, Mode};

fn main() {
    println!("work/depth of each algorithm on random functional graphs (8 initial blocks)\n");
    println!(
        "{:>9}  {:>18}  {:>12}  {:>9}  {:>10}  {:>10}",
        "n", "algorithm", "work", "rounds", "work/n", "rounds/log n"
    );
    for exp in [12u32, 14, 16, 18] {
        let n = 1usize << exp;
        let instance = Instance::random(n, 8, 42);
        for algorithm in ALL_ALGORITHMS {
            // The naive oracle is quadratic in the worst case; skip it for
            // the largest sizes to keep the report quick.
            if algorithm == Algorithm::Naive && n > (1 << 16) {
                continue;
            }
            let ctx = Ctx::new(Mode::Parallel);
            let q = coarsest_partition(&ctx, &instance, algorithm);
            assert!(q.num_blocks() > 0);
            let model = BrentModel::from_stats(n, ctx.stats());
            println!(
                "{:>9}  {:>18}  {:>12}  {:>9}  {:>10.2}  {:>10.2}",
                n,
                format!("{algorithm:?}"),
                model.work,
                model.rounds,
                model.work_per_n(),
                model.rounds_per_log_n()
            );
        }
        println!();
    }

    println!("Brent-predicted speedup of the paper's parallel algorithm (n = 2^18):");
    let instance = Instance::random(1 << 18, 8, 42);
    let ctx = Ctx::new(Mode::Parallel);
    let _ = coarsest_partition(&ctx, &instance, Algorithm::Parallel);
    let model = BrentModel::from_stats(1 << 18, ctx.stats());
    for p in [1usize, 2, 4, 8, 16, 64, 1024] {
        println!(
            "  p = {:>5}: predicted speedup {:.2}×",
            p,
            model.speedup_on(p)
        );
    }
}

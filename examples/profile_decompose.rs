//! Ad-hoc wall-clock profile of the decomposition pipeline's phases.
//! Run: cargo run --release --example profile_decompose

use sfcp_repro::sfcp_forest::cycles::{cycle_nodes_euler, CycleMethod};
use sfcp_repro::sfcp_parprim::euler::{EulerTour, RootedForest};
use sfcp_repro::sfcp_pram::{Ctx, Mode};
use std::time::Instant;

fn main() {
    let n = 1_000_000;
    let g = sfcp_repro::sfcp_forest::generators::random_function(n, 0xDECADE);
    let ctx = Ctx::untracked(Mode::Parallel);
    // Warm pools.
    let _ = sfcp_repro::sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);

    for _ in 0..2 {
        let t = Instant::now();
        let is_cycle = cycle_nodes_euler(&ctx, &g);
        println!(
            "cycle_nodes_euler: {:.1} ms",
            t.elapsed().as_secs_f64() * 1e3
        );

        let f = g.table();
        let t = Instant::now();
        let parents: Vec<u32> = ctx.par_map_idx(n, |x| if is_cycle[x] { x as u32 } else { f[x] });
        let forest = RootedForest::from_parents(&ctx, parents);
        println!(
            "from_parents:      {:.1} ms",
            t.elapsed().as_secs_f64() * 1e3
        );

        let t = Instant::now();
        let tour = EulerTour::build(&ctx, &forest);
        println!(
            "EulerTour::build:  {:.1} ms",
            t.elapsed().as_secs_f64() * 1e3
        );

        let t = Instant::now();
        let levels = tour.levels(&ctx);
        println!(
            "levels:            {:.1} ms",
            t.elapsed().as_secs_f64() * 1e3
        );
        std::hint::black_box(levels.len());

        let t = Instant::now();
        let d = sfcp_repro::sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
        println!(
            "decompose total:   {:.1} ms",
            t.elapsed().as_secs_f64() * 1e3
        );
        std::hint::black_box(d.num_cycles());
        println!();
    }
}

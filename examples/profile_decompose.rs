//! Phase-tree profile of the decomposition pipeline, built on the
//! `sfcp_pram::trace` span recorder: every engine pass and pipeline phase
//! opens a span, so one traced run yields the full tree — wall/self time,
//! work/depth charges, workspace checkouts, and the resolved engine of
//! every scatter dispatch — with no hand-rolled timing in the harness.
//!
//! Run: `cargo run --release --example profile_decompose [-- --trace out.json]`
//!
//! `--trace <path>` additionally writes the Chrome/Perfetto export of the
//! final warm run — load it at `ui.perfetto.dev` or `chrome://tracing`.

use sfcp_repro::sfcp_forest::cycles::CycleMethod;
use sfcp_repro::sfcp_pram::Ctx;

fn main() {
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace_path = Some(args.next().expect("--trace needs a path")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let n = 1_000_000;
    let g = sfcp_repro::sfcp_forest::generators::random_function(n, 0xDECADE);
    let ctx = Ctx::parallel();
    // Warm the workspace pools untraced, so the profiled runs below show
    // the steady-state (pool-hit) shape rather than first-run allocations.
    let _ = sfcp_repro::sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
    ctx.reset_stats();
    ctx.trace().enable();

    for run in 0..2 {
        ctx.trace().clear();
        ctx.reset_stats();
        let d = sfcp_repro::sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
        std::hint::black_box(d.num_cycles());
        let snap = ctx.trace().snapshot();
        println!("== warm decompose run {run} (n = {n}) ==");
        print!("{}", snap.render_tree());
        println!();
        if run == 1 {
            if let Some(path) = &trace_path {
                std::fs::write(path, snap.to_chrome_json()).expect("failed to write trace json");
                println!("wrote {path} (chrome://tracing / ui.perfetto.dev)");
            }
        }
    }
}

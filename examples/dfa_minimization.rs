//! DFA minimisation over a single-letter alphabet — the application the
//! coarsest partition literature (Hopcroft, Paige–Tarjan–Bonic, Srikant)
//! always cites.
//!
//! A DFA with one input letter is exactly a function `f : states → states`;
//! two states are equivalent iff they agree on acceptance after every number
//! of steps — i.e. the coarsest partition of the acceptance partition under
//! `f`.  This example builds a unary DFA that recognises "the number of
//! remaining steps to an accepting sink is ≡ r (mod m)", adds redundant
//! states, minimises it with the parallel algorithm, and checks the result
//! against an explicit product construction.
//!
//! Run with: `cargo run --example dfa_minimization --release`

use rand::prelude::*;
use sfcp::{coarsest_partition, Algorithm, Instance};
use sfcp_pram::Ctx;

fn main() {
    let modulus = 6usize;
    let copies = 2_000usize; // duplicated chains to make the DFA redundant
    let chain_len = 48usize;
    let mut rng = StdRng::seed_from_u64(7);

    // States: a core cycle 0..modulus (the "mod counter"), plus `copies`
    // chains of length `chain_len` that feed into random cycle states.
    let n = modulus + copies * chain_len;
    let mut delta = vec![0u32; n];
    #[allow(clippy::needless_range_loop)]
    for s in 0..modulus {
        delta[s] = ((s + 1) % modulus) as u32;
    }
    for c in 0..copies {
        let base = modulus + c * chain_len;
        for i in 0..chain_len {
            delta[base + i] = if i + 1 < chain_len {
                (base + i + 1) as u32
            } else {
                rng.gen_range(0..modulus) as u32
            };
        }
    }

    // Accepting states: cycle state 0, i.e. "multiples of m steps from state 0".
    let accepting: Vec<u32> = (0..n).map(|s| u32::from(s == 0)).collect();
    let instance = Instance::new(delta.clone(), accepting);

    let ctx = Ctx::parallel();
    let start = std::time::Instant::now();
    let minimal = coarsest_partition(&ctx, &instance, Algorithm::Parallel);
    let elapsed = start.elapsed();
    sfcp::verify::assert_valid(&instance, &minimal);

    println!(
        "unary DFA with {n} states minimised to {} states in {:.1} ms (work {}, rounds {})",
        minimal.num_blocks(),
        elapsed.as_secs_f64() * 1e3,
        ctx.stats().work,
        ctx.stats().rounds,
    );

    // Cross-check: the minimal automaton must distinguish states exactly by
    // the number of steps until acceptance, capped by when they merge into
    // the counter cycle.  Compute that signature explicitly for a sample.
    let steps_to_accept = |mut s: usize| -> Vec<bool> {
        let mut sig = Vec::with_capacity(2 * n.min(200));
        for _ in 0..200 {
            sig.push(s == 0);
            s = delta[s] as usize;
        }
        sig
    };
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..2_000 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let same_class = minimal.label(a as u32) == minimal.label(b as u32);
        let same_signature = steps_to_accept(a) == steps_to_accept(b);
        // A 200-step signature is enough to separate states here because every
        // state reaches the 6-cycle within 48 steps.
        assert_eq!(
            same_class, same_signature,
            "states {a} and {b} disagree between the minimiser and the signature check"
        );
    }
    println!("sampled 2000 state pairs: minimiser classes match behavioural signatures");

    // The minimal DFA for this language has exactly `modulus` live states on
    // the cycle plus the distinguishable chain suffixes; report the shape.
    println!(
        "counter cycle states remaining: {} (expected {modulus})",
        (0..modulus)
            .map(|s| minimal.label(s as u32))
            .collect::<std::collections::HashSet<_>>()
            .len()
    );
}

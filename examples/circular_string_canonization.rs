//! Canonising circular strings — the stand-alone subproblem of Section 3.1.
//!
//! Necklaces, chemical ring notations and circular genome fingerprints are
//! all "circular strings"; comparing two of them requires a canonical
//! rotation.  This example canonises a batch of random necklaces with the
//! paper's *efficient m.s.p.* algorithm, cross-checks against Booth's
//! sequential algorithm, and then sorts the canonical forms with the paper's
//! string sorting algorithm to count distinct necklaces.
//!
//! Run with: `cargo run --example circular_string_canonization --release`

use rand::prelude::*;
use sfcp_pram::Ctx;
use sfcp_strings::msp::{minimal_starting_point, MspMethod};
use sfcp_strings::string_sort::{sort_strings, StringSortMethod};
use sfcp_strings::{booth_msp, rotation};

fn main() {
    let ctx = Ctx::parallel();
    let mut rng = StdRng::seed_from_u64(2026);

    // A batch of necklaces over a 4-letter alphabet; half of them are
    // rotations of the other half, so roughly 50% should collapse.
    let base_count = 3_000usize;
    let len = 96usize;
    let mut necklaces: Vec<Vec<u32>> = (0..base_count)
        .map(|_| (0..len).map(|_| rng.gen_range(0..4u32)).collect())
        .collect();
    for i in 0..base_count {
        let shift = rng.gen_range(0..len);
        let rotated = rotation(&necklaces[i], shift);
        necklaces.push(rotated);
    }

    // Canonise every necklace (parallel over necklaces; each uses the
    // recursive contraction algorithm of Lemma 3.7).
    let start = std::time::Instant::now();
    let canonical: Vec<Vec<u32>> = necklaces
        .iter()
        .map(|s| {
            let msp = minimal_starting_point(&ctx, s, MspMethod::Efficient);
            debug_assert_eq!(msp % s.len(), booth_msp(s) % s.len());
            rotation(s, msp)
        })
        .collect();
    let canonise_time = start.elapsed();

    // Sort the canonical forms lexicographically and count distinct ones.
    let start = std::time::Instant::now();
    let order = sort_strings(&ctx, &canonical, StringSortMethod::Contraction);
    let sort_time = start.elapsed();
    let mut distinct = if order.is_empty() { 0 } else { 1 };
    for w in order.windows(2) {
        if canonical[w[0] as usize] != canonical[w[1] as usize] {
            distinct += 1;
        }
    }

    println!(
        "{} necklaces of length {len}: {} distinct after canonisation",
        necklaces.len(),
        distinct
    );
    println!(
        "canonisation {:.1} ms, sorting {:.1} ms (work so far: {})",
        canonise_time.as_secs_f64() * 1e3,
        sort_time.as_secs_f64() * 1e3,
        ctx.stats().work
    );

    // Every original necklace and its planted rotation must canonise to the
    // same string.
    for i in 0..base_count {
        assert_eq!(
            canonical[i],
            canonical[base_count + i],
            "planted rotation {i} did not collapse"
        );
    }
    println!("all {base_count} planted rotations collapsed onto their originals");
    assert!(distinct <= base_count);
}

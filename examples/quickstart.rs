//! Quickstart: solve the paper's own 16-node example (Fig. 1 / Example 2.2)
//! with every algorithm and print the resulting labelling.
//!
//! Run with: `cargo run --example quickstart --release`

use sfcp::{coarsest_partition, Algorithm, Instance, ALL_ALGORITHMS};
use sfcp_pram::Ctx;

fn main() {
    // The instance of Example 2.2: A_f = [2,4,6,8,10,12,1,3,5,7,9,11,14,15,16,13]
    // and A_B = [1,2,1,1,2,2,3,3,1,1,3,1,1,2,1,3] (1-based in the paper).
    let instance = Instance::paper_example();
    println!("n = {} elements, {} initial blocks", instance.len(), {
        let mut set = std::collections::HashSet::new();
        instance.blocks().iter().for_each(|&b| {
            set.insert(b);
        });
        set.len()
    });

    for algorithm in ALL_ALGORITHMS {
        let ctx = Ctx::parallel();
        let q = coarsest_partition(&ctx, &instance, algorithm);
        sfcp::verify::assert_valid(&instance, &q);
        let stats = ctx.stats();
        println!(
            "{algorithm:?}: {} blocks, labels (canonical) = {:?}, work = {}, rounds = {}",
            q.num_blocks(),
            q.canonical().labels(),
            stats.work,
            stats.rounds,
        );
    }

    // The paper reports A_Q = [1,2,1,3,2,2,4,4,1,3,4,3,1,2,3,4]; check that the
    // parallel algorithm produces exactly that partition.
    let ctx = Ctx::parallel();
    let q = coarsest_partition(&ctx, &instance, Algorithm::Parallel);
    let expected = sfcp::Partition::new(sfcp_forest::generators::paper_example_expected_q());
    assert!(q.same_partition(&expected));
    println!("\nThe parallel algorithm reproduces the paper's A_Q exactly (Example 3.1).");
}

//! Out-of-cache correctness tier: the decomposition invariants at
//! `n = 10^8`, where every working array is several times the probed LLC
//! and the footprint-adaptive selector (`ScatterEngine::Auto`, the
//! default) resolves to the write-combining engine on every scatter
//! dispatch.
//!
//! The always-on suites stop at sizes where direct stores still win; this
//! tier is the only functional coverage of the *selected-combining* regime
//! at genuine out-of-cache scale, and of the chunked big-`n` workload
//! generator the bench tier uses.  It needs ~10 GB of RAM and minutes of
//! wall-clock, so it is `#[ignore]`-gated and run by the scheduled big-`n`
//! CI job (`.github/workflows/bign.yml`) alongside the bench tier:
//!
//! ```sh
//! cargo test --release --test bign -- --ignored
//! ```

use sfcp_forest::cycles::CycleMethod;
use sfcp_pram::{Ctx, Mode};

/// Sampling stride for the per-node invariant checks: a prime, so the
/// sampled ids sweep all residues and chunk offsets of the generator
/// rather than aliasing its power-of-two chunk geometry.
const STRIDE: usize = 99_991;

#[test]
#[ignore = "needs ~10 GB and minutes of wall-clock; run via the scheduled bign CI job"]
fn decompose_invariants_hold_at_1e8_under_auto_selection() {
    const N: usize = 100_000_000;
    let g = sfcp_bench::workloads::bign_function(N);
    let f = g.table();
    // Default engines — scatter selection is `Auto`, which resolves to
    // `Combining` for every destination past the probed LLC.
    let ctx = Ctx::untracked(Mode::Parallel);
    assert_eq!(
        ctx.scatter_engine(),
        sfcp_pram::ScatterEngine::Auto,
        "the default scatter engine must be the footprint-adaptive selector"
    );
    let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);

    // Global shape: the cycle CSR is well-formed and consistent with the
    // per-node cycle flags (full linear passes — cheap next to the
    // decomposition itself).
    assert_eq!(d.len(), N);
    assert!(d.num_cycles() >= 1);
    assert_eq!(d.cycle_offsets[0], 0);
    assert!(
        d.cycle_offsets.windows(2).all(|w| w[0] < w[1]),
        "every cycle is non-empty and offsets are strictly monotone"
    );
    assert_eq!(
        *d.cycle_offsets.last().unwrap() as usize,
        d.cycle_nodes.len()
    );
    let cycle_flag_count = d.is_cycle.iter().filter(|&&c| c).count();
    assert_eq!(
        cycle_flag_count,
        d.cycle_nodes.len(),
        "cycle membership flags must agree with the materialized cycles"
    );

    // Sampled per-node invariants (the full checks are O(n) gathers each;
    // a prime-stride sample keeps this tier's runtime dominated by the
    // decomposition under test, not the harness).
    for x in (0..N).step_by(STRIDE) {
        let xu = x as u32;
        let c = d.cycle_of[x] as usize;
        assert!(c < d.num_cycles(), "cycle id in range at node {x}");
        let root = d.root_of(xu);
        assert!(
            d.is_cycle[root as usize],
            "root of node {x} must lie on a cycle"
        );
        assert_eq!(
            d.cycle_of[root as usize], d.cycle_of[x],
            "node {x} and its root must agree on the cycle id"
        );
        if d.is_cycle[x] {
            assert_eq!(d.levels[x], 0, "cycle node {x} is at level 0");
            assert_eq!(root, xu, "a cycle node is its own root");
            let cycle = d.cycle(c);
            let pos = d.cycle_pos[x] as usize;
            assert_eq!(cycle[pos], xu, "cycle {c} holds node {x} at its position");
            assert_eq!(
                cycle[(pos + 1) % cycle.len()],
                f[x],
                "cycle order follows f at node {x}"
            );
        } else {
            assert_eq!(d.cycle_pos[x], u32::MAX, "tree node {x} has no cycle pos");
            assert_eq!(
                d.levels[x],
                d.levels[f[x] as usize] + 1,
                "one f-step moves tree node {x} one level closer to its cycle"
            );
            assert_eq!(
                d.root_of(f[x]),
                root,
                "f stays within node {x}'s pseudo-tree"
            );
        }
    }
}

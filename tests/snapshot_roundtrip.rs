//! Property suite for the serving layer's [`Snapshot`] format: encode →
//! decode is the identity; corrupted bytes (any single-bit flip, any
//! truncation, trailing garbage) surface as typed errors and never panic;
//! and a snapshot-cache hit replays exactly the answer and charges of the
//! cold compute it memoized.

use proptest::collection::vec;
use proptest::prelude::*;
use sfcp_repro::sfcp::Instance;
use sfcp_service::batch::BatchPolicy;
use sfcp_service::snapshot::{Snapshot, SnapshotCache, SnapshotPayload};
use sfcp_service::worker::Worker;
use sfcp_service::{ComputeRequest, ReplyPayload};

/// Build one of the three payload shapes from primitive generator inputs.
fn payload_from(kind: u8, values: Vec<u32>, a: u64, b: u64, c: u64) -> SnapshotPayload {
    match kind {
        0 => SnapshotPayload::Labels(values),
        1 => SnapshotPayload::Msp(a),
        _ => SnapshotPayload::Decomposition {
            num_cycles: a,
            num_cycle_nodes: b,
            digest: c,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity for every payload shape.
    #[test]
    fn encode_decode_is_identity(
        kind in 0u8..3,
        values in vec(any::<u32>(), 0..300),
        (a, b, c) in (any::<u64>(), any::<u64>(), any::<u64>()),
        (work, rounds) in (any::<u64>(), any::<u64>()),
    ) {
        let snap = Snapshot { payload: payload_from(kind, values, a, b, c), work, rounds };
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).expect("decode of a fresh encode");
        prop_assert_eq!(back.payload, snap.payload);
        prop_assert_eq!((back.work, back.rounds), (snap.work, snap.rounds));
    }

    /// Any single-bit flip anywhere in the encoding is caught by the
    /// checksum (or a typed structural check) — never a panic, never a
    /// silently different answer.
    #[test]
    fn any_single_bit_flip_is_a_typed_error(
        kind in 0u8..3,
        values in vec(any::<u32>(), 0..200),
        (a, b, c) in (any::<u64>(), any::<u64>(), any::<u64>()),
        byte_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let snap = Snapshot { payload: payload_from(kind, values, a, b, c), work: a, rounds: b };
        let mut bytes = snap.encode();
        let at = (byte_seed % bytes.len() as u64) as usize;
        bytes[at] ^= 1 << bit;
        prop_assert!(
            Snapshot::decode(&bytes).is_err(),
            "flip of bit {bit} at byte {at} went undetected"
        );
    }

    /// Every truncation (and any trailing garbage) is a typed error.
    #[test]
    fn truncations_and_trailing_bytes_are_typed_errors(
        kind in 0u8..3,
        values in vec(any::<u32>(), 0..200),
        (a, b, c) in (any::<u64>(), any::<u64>(), any::<u64>()),
        cut_seed in any::<u64>(),
        extra in 1usize..9,
    ) {
        let snap = Snapshot { payload: payload_from(kind, values, a, b, c), work: c, rounds: a };
        let bytes = snap.encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(Snapshot::decode(&bytes[..cut]).is_err(), "truncation to {cut} bytes");

        let mut padded = bytes.clone();
        padded.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert!(Snapshot::decode(&padded).is_err(), "{extra} trailing bytes");
    }

    /// A cache hit replays exactly the cold compute: same labels, same
    /// charges, `cached` flag flipped.
    #[test]
    fn cache_hit_equals_cold_compute(
        n in 8usize..200,
        blocks in 2usize..5,
        seed in 0u64..500,
    ) {
        let mut worker = Worker::new(0, 1 << 20, BatchPolicy::default(), false);
        let inst = Instance::random(n, blocks, seed);
        let req = ComputeRequest::partition(inst.f().to_vec(), inst.blocks().to_vec());

        let cold = worker.serve(1, &req).outcome.expect("cold solve");
        prop_assert!(!cold.cached);
        let hit = worker.serve(2, &req).outcome.expect("cache hit");
        prop_assert!(hit.cached, "identical request must hit the cache");
        prop_assert_eq!(&hit.payload, &cold.payload);
        prop_assert_eq!((hit.work, hit.rounds), (cold.work, cold.rounds));

        // The digest view of the same cached entry agrees with the labels.
        let digested = worker
            .serve(3, &req.clone().digest_only())
            .outcome
            .expect("digest view");
        prop_assert!(digested.cached);
        let ReplyPayload::Labels(labels) = &cold.payload else {
            panic!("labels expected");
        };
        prop_assert_eq!(
            digested.payload,
            ReplyPayload::LabelsDigest(sfcp_service::snapshot::labels_digest(labels))
        );
    }
}

/// Corrupt bytes planted *inside the cache* degrade to a miss (recompute),
/// never a wrong answer — decode runs on every hit.
#[test]
fn corrupt_cache_entries_degrade_to_misses() {
    let mut cache = SnapshotCache::new(1 << 16);
    let snap = Snapshot {
        payload: SnapshotPayload::Labels(vec![0, 1, 0, 2]),
        work: 42,
        rounds: 7,
    };
    cache.insert(9, &snap);
    assert!(cache.get(9).is_some());
    cache.corrupt_for_test(9);
    assert!(
        cache.get(9).is_none(),
        "a corrupt entry must read as a miss"
    );
    let stats = cache.stats();
    assert_eq!(stats.entries, 0, "the corrupt entry must have been evicted");
}

//! Adversarial-input suite: malformed inputs must surface as typed errors
//! through the `try_` surface — never as panics — and must leave the context
//! reconciled (no outstanding checkouts).
//!
//! Property-based: cyclic "forests", non-permutation successor arrays,
//! out-of-range function tables, mismatched instance arrays, truncated
//! arc-rank streams.

use proptest::prelude::*;
use sfcp::{DecomposeError, Instance};
use sfcp_forest::FunctionalGraph;
use sfcp_parprim::euler::{EulerTour, RootedForest};
use sfcp_parprim::jump::try_permutation_cycle_min;
use sfcp_pram::{Ctx, Error};

/// Run a fallible closure and demand a typed error: unwinding is a test
/// failure in its own right, distinct from an `Ok`.
fn expect_typed_err<T: std::fmt::Debug>(
    f: impl FnOnce() -> Result<T, Error> + std::panic::UnwindSafe,
) -> Error {
    match std::panic::catch_unwind(f) {
        Ok(result) => result.expect_err("adversarial input must be rejected"),
        Err(_) => panic!("adversarial input must surface as Err, not a panic"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parent arrays with at least one cycle of length >= 2 are rejected
    /// with `CycleDetected`, and the workspace comes back reconciled.
    #[test]
    fn cyclic_parent_arrays_are_rejected(
        n in 2usize..120,
        cycle_at in 0usize..120,
        seed in 0u64..1000,
    ) {
        let mut rng_state = seed.wrapping_mul(0x9e37_79b9_97f4_a7c5).wrapping_add(1);
        let mut next = move |bound: usize| {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state % bound as u64) as u32
        };
        // Random pointers, then force a 2-cycle somewhere.
        let mut parent: Vec<u32> = (0..n).map(|_| next(n)).collect();
        let a = cycle_at % n;
        let b = (a + 1) % n;
        parent[a] = b as u32;
        parent[b] = a as u32;

        let ctx = Ctx::parallel();
        let err = expect_typed_err(std::panic::AssertUnwindSafe(|| {
            RootedForest::from_parents_checked(&ctx, parent.clone())
        }));
        prop_assert!(matches!(err, Error::CycleDetected { .. }), "got {err}");
        prop_assert_eq!(ctx.workspace().stats().outstanding(), 0);
    }

    /// Successor arrays that repeat an element (hence are no permutation)
    /// are rejected with `NotAPermutation`; out-of-range entries with
    /// `OutOfRange`.  Neither panics.
    #[test]
    fn non_permutation_successors_are_rejected(
        n in 2usize..120,
        dup_from in 0usize..120,
        dup_to in 0usize..120,
        rotate in 0usize..120,
    ) {
        let n = n.max(2);
        // Start from a genuine permutation (a rotation), then break it.
        let mut succ: Vec<u32> = (0..n as u32).map(|i| (i + 1 + (rotate % n) as u32) % n as u32).collect();
        let from = dup_from % n;
        let mut to = dup_to % n;
        if to == from {
            to = (to + 1) % n;
        }
        succ[to] = succ[from]; // now succ[from] appears twice

        let ctx = Ctx::parallel();
        let err = expect_typed_err(std::panic::AssertUnwindSafe(|| {
            try_permutation_cycle_min(&ctx, &succ)
        }));
        prop_assert!(matches!(err, Error::NotAPermutation { .. }), "got {err}");
        prop_assert_eq!(ctx.workspace().stats().outstanding(), 0);

        // Out-of-range entry.
        let mut succ: Vec<u32> = (0..n as u32).map(|i| (i + 1) % n as u32).collect();
        succ[from] = n as u32 + 3;
        let err = expect_typed_err(std::panic::AssertUnwindSafe(|| {
            try_permutation_cycle_min(&ctx, &succ)
        }));
        prop_assert!(matches!(err, Error::OutOfRange { .. }), "got {err}");
    }

    /// Function tables with out-of-range values are rejected by the graph
    /// and instance constructors with `OutOfRange`.
    #[test]
    fn out_of_range_function_tables_are_rejected(
        n in 1usize..120,
        at in 0usize..120,
        excess in 0u32..50,
    ) {
        let mut f: Vec<u32> = vec![0; n];
        f[at % n] = n as u32 + excess;
        let err = expect_typed_err(|| FunctionalGraph::try_new(f.clone()));
        prop_assert!(matches!(err, Error::OutOfRange { .. }), "got {err}");

        let blocks = vec![0u32; n];
        match Instance::try_new(f, blocks) {
            Err(Error::OutOfRange { .. }) => {}
            other => prop_assert!(false, "expected OutOfRange, got {other:?}"),
        }
    }

    /// Mismatched `A_f` / `A_B` lengths are a `LengthMismatch`, and the
    /// solver-facade classification marks them permanent (not retryable).
    #[test]
    fn mismatched_instance_arrays_are_rejected(
        n in 1usize..120,
        delta in 1usize..20,
    ) {
        let f: Vec<u32> = vec![0; n];
        let blocks = vec![0u32; n + delta];
        let err = expect_typed_err(|| Instance::try_new(f, blocks));
        prop_assert!(matches!(err, Error::LengthMismatch { .. }), "got {err}");
        let classified: DecomposeError = err.into();
        prop_assert!(!classified.is_retryable());
    }

    /// Truncated arc-rank streams (shorter than the 2n arcs the tour needs)
    /// are rejected with `LengthMismatch`.
    #[test]
    fn truncated_arc_rank_streams_are_rejected(
        n in 1usize..80,
        cut in 1usize..160,
    ) {
        let ctx = Ctx::parallel();
        let parent: Vec<u32> = (0..n as u32).map(|i| i.saturating_sub(1)).collect();
        let forest = RootedForest::from_parents(&ctx, parent);
        let short_len = (2 * n).saturating_sub(cut.clamp(1, 2 * n));
        let dist = vec![0u32; short_len];
        let err = expect_typed_err(std::panic::AssertUnwindSafe(|| {
            EulerTour::try_from_arc_ranks(&ctx, &forest, &dist)
        }));
        prop_assert!(matches!(err, Error::LengthMismatch { .. }), "got {err}");
    }
}

/// The documented boundary of the index width: `2^31 - 1` passes the check,
/// `2^31` is rejected — pinned through the public helper so it never needs
/// an 8 GiB allocation to exercise.
#[test]
fn index_width_boundary_is_pinned() {
    assert!(sfcp_pram::check_index_width((1 << 31) - 1).is_ok());
    assert!(matches!(
        sfcp_pram::check_index_width(1 << 31),
        Err(Error::TooLarge { .. })
    ));
    assert_eq!(sfcp_pram::MAX_DOMAIN, 1 << 31);
}

// ---------------------------------------------------------------------------
// Serving-layer protocol decoder: malformed frames, oversized length
// prefixes, and garbage JSON must come back as typed error responses — never
// a hung connection, a panic, or a dead server.
// ---------------------------------------------------------------------------

mod protocol {
    use sfcp_service::{
        Client, ClientError, ComputeRequest, ErrorCode, Response, Server, ServerConfig,
    };
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn server() -> sfcp_service::ServerHandle {
        Server::start(ServerConfig::default()).expect("bind")
    }

    /// Decode a raw response frame and demand a typed error of `code`.
    fn expect_error(payload: &[u8], code: ErrorCode) {
        let response = Response::decode(payload).expect("response parses");
        let err = response.outcome.expect_err("a typed error response");
        assert_eq!(err.code, code, "{err}");
    }

    /// Garbage JSON inside a well-delimited frame: typed `BadRequest`, and
    /// the connection keeps serving.
    #[test]
    fn garbage_json_is_typed_and_connection_survives() {
        let handle = server();
        let mut client = Client::connect(handle.addr()).expect("connect");
        for garbage in [
            &b"{not json at all"[..],
            b"",
            b"[1,2,3]",
            b"\"a bare string\"",
            b"{\"id\":1,\"kind\":\"no_such_kind\",\"f\":[0]}",
            b"{\"id\":2,\"kind\":\"partition\"}",
            b"{\"id\":3,\"kind\":\"partition\",\"f\":[0],\"blocks\":[true]}",
            b"{\"id\":4,\"kind\":\"partition\",\"f\":[0],\"blocks\":[0],\"engines\":{\"rank\":\"bogus\"}}",
            b"\xff\xfe invalid utf8 \xff",
        ] {
            let payload = client.call_raw(garbage).expect("error response expected");
            expect_error(&payload, ErrorCode::BadRequest);
        }
        // Decodes fine but is rejected by the worker's workload validation:
        // still a typed error, one layer later.
        let payload = client
            .call_raw(b"{\"id\":5,\"kind\":\"partition\",\"workload\":{\"n\":0,\"seed\":1}}")
            .expect("error response expected");
        expect_error(&payload, ErrorCode::InvalidInput);
        // The same connection still computes.
        let reply = client
            .request(&ComputeRequest::partition(vec![1, 0], vec![0, 1]))
            .expect("transport")
            .expect("solve");
        assert!(reply.work > 0);
        handle.shutdown();
    }

    /// A batch nested inside a batch is rejected, not recursed into.
    #[test]
    fn nested_batches_are_rejected() {
        let handle = server();
        let mut client = Client::connect(handle.addr()).expect("connect");
        let nested =
            br#"{"id":1,"kind":"batch","requests":[{"id":2,"kind":"batch","requests":[]}]}"#;
        let payload = client.call_raw(nested).expect("error response expected");
        expect_error(&payload, ErrorCode::BadRequest);
        handle.shutdown();
    }

    /// Deeply nested JSON trips the parser's depth limit as a typed error —
    /// not a stack overflow.
    #[test]
    fn pathological_nesting_is_bounded() {
        let handle = server();
        let mut client = Client::connect(handle.addr()).expect("connect");
        let mut deep = vec![b'['; 100_000];
        deep.extend(vec![b']'; 100_000]);
        let payload = client.call_raw(&deep).expect("error response expected");
        expect_error(&payload, ErrorCode::BadRequest);
        handle.shutdown();
    }

    /// An oversized length prefix gets one typed error response and then a
    /// deliberate close (the stream position is unrecoverable) — and the
    /// server keeps accepting fresh connections.
    #[test]
    fn oversized_length_prefix_reports_then_closes() {
        let handle = server();
        let mut raw = TcpStream::connect(handle.addr()).expect("connect");
        raw.write_all(&u32::MAX.to_le_bytes())
            .expect("write prefix");
        raw.flush().expect("flush");

        let mut len_buf = [0u8; 4];
        raw.read_exact(&mut len_buf).expect("error frame header");
        let len = u32::from_le_bytes(len_buf) as usize;
        assert!(len < 1 << 16, "sane error frame");
        let mut payload = vec![0u8; len];
        raw.read_exact(&mut payload).expect("error frame body");
        expect_error(&payload, ErrorCode::BadRequest);

        // Then EOF: the server closed its half.
        assert_eq!(raw.read(&mut len_buf).expect("clean close"), 0);

        // A fresh connection is served normally.
        let mut client = Client::connect(handle.addr()).expect("reconnect");
        assert!(client.probe().expect("transport").is_ok());
        handle.shutdown();
    }

    /// A frame truncated mid-payload (client hangs up early) must not wedge
    /// the server.
    #[test]
    fn truncated_frames_do_not_wedge_the_server() {
        let handle = server();
        {
            let mut raw = TcpStream::connect(handle.addr()).expect("connect");
            raw.write_all(&100u32.to_le_bytes()).expect("write prefix");
            raw.write_all(b"{\"id\":1").expect("partial payload");
            // Drop: EOF inside the frame body.
        }
        let mut client = Client::connect(handle.addr()).expect("reconnect");
        assert!(client.probe().expect("transport").is_ok());
        handle.shutdown();
    }

    /// The client side refuses oversized response prefixes too (a malicious
    /// or confused server cannot make it allocate unboundedly).
    #[test]
    fn client_rejects_oversized_response_prefixes() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let fake = std::thread::spawn(move || {
            let (mut peer, _) = listener.accept().expect("accept");
            let mut sink = [0u8; 256];
            let _ = peer.read(&mut sink);
            peer.write_all(&u32::MAX.to_le_bytes())
                .expect("evil prefix");
            peer.flush().expect("flush");
            // Hold the socket open until the client gives up.
            let _ = peer.read(&mut sink);
        });
        let mut client = Client::connect(addr).expect("connect");
        let err = client.call_raw(b"{}").expect_err("oversized response");
        assert!(matches!(err, ClientError::Frame(_)), "got {err}");
        drop(client);
        fake.join().expect("fake server");
    }
}

//! Differential harness for the serving layer: every request kind
//! round-trips through a live TCP service and must match a direct library
//! call **bit-for-bit** — both the answer and the charges.  Charges are
//! input-determined (machine-, warmth-, and topology-independent), which is
//! what makes this comparison meaningful: a warm service worker and a cold
//! harness context must report identical `(work, rounds)`.
//!
//! Coverage: the full `SortEngine` × `RankEngine` × `ScatterEngine` grid,
//! batch sizes 1 / 7 / 64 (solo path, fused cohorts), and the same batch
//! replayed after an injected mid-batch fault (recovery must not poison the
//! differential property).
//!
//! The fault layer is process-global, so every test in this binary
//! serializes on one lock.

use sfcp_pram::faults::{self, FaultKind, FaultSite};
use sfcp_pram::{Ctx, RankEngine, ScatterEngine, SortEngine, Stats};
use sfcp_repro::sfcp::{try_coarsest_partition, Algorithm, Instance};
use sfcp_repro::sfcp_forest::cycles::CycleMethod;
use sfcp_repro::sfcp_forest::{generators, try_decompose};
use sfcp_service::batch::{canonical_labels, fuse_instances, split_canonical_labels};
use sfcp_service::snapshot::{decomposition_digest, labels_digest};
use sfcp_service::worker::workload_string;
use sfcp_service::{
    Client, ComputeRequest, Engines, ErrorCode, Kind, Reply, ReplyPayload, Server, ServerConfig,
};

static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(prev);
    result
}

/// The full engine grid the service must be differentially identical on.
fn engine_grid() -> Vec<Engines> {
    let mut grid = Vec::new();
    for sort in [SortEngine::Packed, SortEngine::Permutation] {
        for rank in RankEngine::ALL {
            for scatter in ScatterEngine::ALL {
                grid.push(Engines {
                    sort,
                    rank,
                    scatter,
                });
            }
        }
    }
    grid
}

/// A harness context configured like the service worker configures its own.
fn direct_ctx(engines: &Engines) -> Ctx {
    Ctx::parallel()
        .with_sort_engine(engines.sort)
        .with_rank_engine(engines.rank)
        .with_scatter_engine(engines.scatter)
}

/// Run a direct library call under fresh stats, mirroring the worker's
/// `traced_run` charge accounting.
fn charged<T>(ctx: &Ctx, run: impl FnOnce(&Ctx) -> T) -> (T, Stats) {
    ctx.reset_stats();
    let result = run(ctx);
    (result, ctx.stats())
}

fn assert_charges(reply: &Reply, stats: Stats, what: &str) {
    assert_eq!(
        (reply.work, reply.rounds),
        (stats.work, stats.rounds),
        "{what}: service charges diverged from the direct call"
    );
}

fn problem_size() -> usize {
    if cfg!(debug_assertions) {
        900
    } else {
        20_000
    }
}

/// Every request kind, over the whole engine grid, against direct calls.
#[test]
fn every_kind_matches_direct_calls_across_the_engine_grid() {
    let _g = lock();
    faults::reset();
    let server = Server::start(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let n = problem_size();

    for (i, engines) in engine_grid().into_iter().enumerate() {
        let seed = 0x5eed + i as u64;
        let ctx = direct_ctx(&engines);

        // Partition: canonical labels and charges.
        let inst = Instance::random(n, 2 + i % 5, seed);
        let req = ComputeRequest::partition(inst.f().to_vec(), inst.blocks().to_vec())
            .with_engines(engines)
            .no_cache();
        let reply = client.request(&req).expect("transport").expect("solve");
        let (q, stats) = charged(&ctx, |c| {
            try_coarsest_partition(c, &inst, Algorithm::Parallel)
        });
        let expect = canonical_labels(&q.expect("direct solve"));
        assert_eq!(
            reply.payload,
            ReplyPayload::Labels(expect.clone()),
            "partition[{i}]"
        );
        assert_charges(&reply, stats, "partition");

        // MinimizeDfa is the same refinement; answers and charges match the
        // identical direct partition call.
        let req = ComputeRequest::minimize_dfa(inst.f().to_vec(), inst.blocks().to_vec())
            .with_engines(engines)
            .no_cache()
            .digest_only();
        let reply = client.request(&req).expect("transport").expect("solve");
        assert_eq!(
            reply.payload,
            ReplyPayload::LabelsDigest(labels_digest(&expect))
        );
        assert_charges(&reply, stats, "minimize_dfa");

        // Canonize: workload input regenerated harness-side.
        let req = ComputeRequest::workload(Kind::Canonize, n, seed, 4)
            .with_engines(engines)
            .no_cache();
        let reply = client.request(&req).expect("transport").expect("canonize");
        let text = workload_string(n, seed, 4);
        let (msp, stats) = charged(&ctx, |c| {
            sfcp_strings::try_minimal_starting_point(c, &text, sfcp_strings::MspMethod::Efficient)
        });
        assert_eq!(
            reply.payload,
            ReplyPayload::Msp(msp.expect("direct msp") as u64)
        );
        assert_charges(&reply, stats, "canonize");

        // Decompose: structure fingerprint plus charges.
        let graph = generators::random_function(n, seed);
        let req = ComputeRequest::decompose(graph.table().to_vec())
            .with_engines(engines)
            .no_cache();
        let reply = client.request(&req).expect("transport").expect("decompose");
        let (d, stats) = charged(&ctx, |c| try_decompose(c, &graph, CycleMethod::Euler));
        let d = d.expect("direct decompose");
        assert_eq!(
            reply.payload,
            ReplyPayload::Decomposition {
                num_cycles: d.num_cycles() as u64,
                num_cycle_nodes: d.cycle_nodes.len() as u64,
                digest: decomposition_digest(&d),
            }
        );
        assert_charges(&reply, stats, "decompose");
    }
    server.shutdown();
}

fn batch_members(count: usize, seed: u64) -> Vec<Instance> {
    (0..count)
        .map(|j| Instance::random(64 + (j * 37) % 240, 2 + j % 4, seed + j as u64))
        .collect()
}

fn batch_requests(members: &[Instance], engines: Engines) -> Vec<ComputeRequest> {
    members
        .iter()
        .map(|m| {
            ComputeRequest::partition(m.f().to_vec(), m.blocks().to_vec())
                .with_engines(engines)
                .no_cache()
        })
        .collect()
}

/// Drive one batch and differentially verify every member: answers against
/// solo direct solves, charges against the path the cohort actually took
/// (solo charges for a batch of one, fused-reference charges otherwise).
fn verify_batch(client: &mut Client, ctx: &Ctx, members: &[Instance], engines: Engines) {
    let responses = client
        .batch(&batch_requests(members, engines))
        .expect("transport");
    assert_eq!(responses.len(), members.len());

    let (expect_labels, expect_stats): (Vec<Vec<u32>>, Stats) = if members.len() == 1 {
        let (q, stats) = charged(ctx, |c| {
            try_coarsest_partition(c, &members[0], Algorithm::Parallel)
        });
        (vec![canonical_labels(&q.expect("direct"))], stats)
    } else {
        // The fused reference: the harness builds the same union instance
        // the worker fuses, and the cohort's charges must equal one direct
        // call on it.
        let fused = fuse_instances(members);
        let (q, stats) = charged(ctx, |c| {
            try_coarsest_partition(c, &fused.instance, Algorithm::Parallel)
        });
        (
            split_canonical_labels(q.expect("direct fused").labels(), &fused.spans),
            stats,
        )
    };

    for (j, (member, response)) in members.iter().zip(&responses).enumerate() {
        let reply = response.outcome.as_ref().expect("member solve");
        assert_eq!(
            reply.fused as usize,
            members.len(),
            "batch of {} member {j}: cohort size",
            members.len()
        );
        assert_charges(reply, expect_stats, "batch member");
        assert_eq!(
            reply.payload,
            ReplyPayload::Labels(expect_labels[j].clone()),
            "batch of {} member {j}: fused-path labels",
            members.len()
        );
        // And the fused answer equals the member's *solo* direct solve —
        // the answer-preservation property end to end.
        let solo = try_coarsest_partition(ctx, member, Algorithm::Parallel).expect("solo");
        assert_eq!(
            reply.payload,
            ReplyPayload::Labels(canonical_labels(&solo)),
            "batch of {} member {j}: solo-equivalence",
            members.len()
        );
    }
}

/// Batch sizes 1, 7, and 64 round-trip bit-for-bit, results and charges.
#[test]
fn batch_sizes_round_trip_bit_for_bit() {
    let _g = lock();
    faults::reset();
    let server = Server::start(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let engines = Engines::default();
    let ctx = direct_ctx(&engines);

    for (size, seed) in [(1usize, 71), (7, 72), (64, 73)] {
        let members = batch_members(size, seed);
        verify_batch(&mut client, &ctx, &members, engines);
    }
    server.shutdown();
}

/// An injected mid-batch fault fails the whole cohort with typed retryable
/// errors, and the very same batch replayed on the recovered warm worker is
/// differentially identical to direct calls.
#[test]
fn mid_batch_fault_then_replay_matches_direct_calls() {
    let _g = lock();
    faults::reset();
    let server = Server::start(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let engines = Engines::default();
    let ctx = direct_ctx(&engines);
    let members = batch_members(7, 99);

    with_quiet_panics(|| {
        faults::arm(FaultSite::EnginePass, 2, FaultKind::Panic);
        let responses = client
            .batch(&batch_requests(&members, engines))
            .expect("transport");
        faults::reset();
        assert_eq!(responses.len(), members.len());
        for response in &responses {
            let err = response
                .outcome
                .as_ref()
                .expect_err("faulted cohort member");
            assert_eq!(err.code, ErrorCode::Execution);
            assert!(err.retryable, "an injected fault is retryable: {err}");
        }
    });

    // The worker recovered; the replay must still be bit-identical.
    verify_batch(&mut client, &ctx, &members, engines);
    faults::reset();
    server.shutdown();
}

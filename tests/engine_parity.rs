//! Cross-engine regression tests for the zero-allocation sort/rank engine.
//!
//! The packed record engine must be observably identical to the permutation
//! baseline everywhere except wall-clock time and allocation count:
//!
//! * identical partitions from every algorithm,
//! * byte-identical work/depth charges (the tracker-based complexity tables
//!   must be engine-independent),
//! * O(1) workspace allocations per *run* once the pools are warm (not per
//!   doubling round).

use sfcp::{coarsest_partition, Algorithm, Instance};
use sfcp_forest::{cycles::CycleMethod, decompose};
use sfcp_pram::{Ctx, Mode, RankEngine, ScatterEngine, SortEngine};

fn rank_engines() -> [RankEngine; 3] {
    RankEngine::ALL
}

fn instances() -> Vec<Instance> {
    vec![
        Instance::paper_example(),
        Instance::random(3000, 4, 7),
        Instance::random_cycles(&[2, 3, 4, 6, 6, 12, 24], 2, 2),
        Instance::periodic_cycles(9, 24, 6, 3, 3),
        Instance::deep(2000, 5, 2, 4),
    ]
}

#[test]
fn parallel_algorithm_is_engine_independent() {
    for inst in instances() {
        for mode in [Mode::Sequential, Mode::Parallel] {
            let packed = Ctx::new(mode);
            let baseline = Ctx::new(mode).with_sort_engine(SortEngine::Permutation);
            let a = coarsest_partition(&packed, &inst, Algorithm::Parallel);
            let b = coarsest_partition(&baseline, &inst, Algorithm::Parallel);
            assert!(
                a.same_partition(&b),
                "engines disagree on n={}, mode={mode:?}",
                inst.len()
            );
            assert_eq!(
                packed.stats(),
                baseline.stats(),
                "work/depth diverged on n={}, mode={mode:?}",
                inst.len()
            );
        }
    }
}

#[test]
fn doubling_algorithm_is_engine_independent() {
    for inst in instances() {
        let packed = Ctx::parallel();
        let baseline = Ctx::parallel().with_sort_engine(SortEngine::Permutation);
        let a = coarsest_partition(&packed, &inst, Algorithm::Doubling);
        let b = coarsest_partition(&baseline, &inst, Algorithm::Doubling);
        assert!(a.same_partition(&b), "engines disagree on n={}", inst.len());
        assert_eq!(
            packed.stats(),
            baseline.stats(),
            "work/depth diverged on n={}",
            inst.len()
        );
    }
}

/// `decompose` itself must be engine- and method-stable: every `CycleMethod`
/// × `RankEngine` × `SortEngine` combination produces the identical
/// `Decomposition`; for a fixed (method, rank engine) the two sort engines
/// charge identical work/depth, and the two ruling-set rank engines
/// (`RulingSet` vs `CacheBucket`) charge identically to each other (the
/// `PointerJump` rank engine charges its own documented Wyllie model).
#[test]
fn decompose_is_engine_and_method_independent() {
    let graphs = [
        sfcp_forest::generators::paper_example_function(),
        sfcp_forest::generators::random_function(5000, 3),
        sfcp_forest::generators::random_function(40_000, 17), // contraction path
        sfcp_forest::generators::long_tail(3000, 5, 2),
    ];
    for g in &graphs {
        let mut first = None;
        for method in [
            CycleMethod::Sequential,
            CycleMethod::Jump,
            CycleMethod::Euler,
        ] {
            let mut ruling_set_stats = None;
            for rank in rank_engines() {
                let packed = Ctx::parallel().with_rank_engine(rank);
                let baseline = Ctx::parallel()
                    .with_rank_engine(rank)
                    .with_sort_engine(SortEngine::Permutation);
                let a = decompose(&packed, g, method);
                let b = decompose(&baseline, g, method);
                assert_eq!(
                    a,
                    b,
                    "sort engines disagree on decomposition (n={}, {method:?}, {rank:?})",
                    g.len()
                );
                assert_eq!(
                    packed.stats(),
                    baseline.stats(),
                    "sort-engine charges diverged (n={}, {method:?}, {rank:?})",
                    g.len()
                );
                match rank {
                    RankEngine::RulingSet => ruling_set_stats = Some(packed.stats()),
                    RankEngine::CacheBucket => assert_eq!(
                        ruling_set_stats.expect("RulingSet measured first"),
                        packed.stats(),
                        "RulingSet and CacheBucket charges diverged (n={}, {method:?})",
                        g.len()
                    ),
                    RankEngine::PointerJump => {}
                }
                match &first {
                    None => first = Some(a),
                    Some(reference) => assert_eq!(
                        reference,
                        &a,
                        "engine combinations disagree on decomposition (n={}, {method:?}, {rank:?})",
                        g.len()
                    ),
                }
            }
        }
    }
}

/// The full parallel algorithm under every `RankEngine` × `SortEngine`
/// combination: identical partitions everywhere, sort-engine charges equal
/// for a fixed rank engine, and the two ruling-set rank engines charge
/// identically end to end.
#[test]
fn parallel_algorithm_is_rank_engine_independent() {
    // Large enough that both the cycle-min contraction (> 4096 arcs) and the
    // ruling-set list ranking (> 1024 elements) run their large-input paths.
    let inst = Instance::random(20_000, 4, 29);
    let mut reference = None;
    let mut ruling_set_stats = None;
    for rank in rank_engines() {
        let mut per_rank = Vec::new();
        for sort in [SortEngine::Packed, SortEngine::Permutation] {
            let ctx = Ctx::parallel()
                .with_rank_engine(rank)
                .with_sort_engine(sort);
            let q = coarsest_partition(&ctx, &inst, Algorithm::Parallel);
            match &reference {
                None => reference = Some(q),
                Some(r) => assert!(
                    r.same_partition(&q),
                    "partition diverged under ({rank:?}, {sort:?})"
                ),
            }
            per_rank.push(ctx.stats());
        }
        assert_eq!(
            per_rank[0], per_rank[1],
            "sort-engine charges diverged under {rank:?}"
        );
        match rank {
            RankEngine::RulingSet => ruling_set_stats = Some(per_rank[0]),
            RankEngine::CacheBucket => assert_eq!(
                ruling_set_stats.expect("RulingSet measured first"),
                per_rank[0],
                "RulingSet and CacheBucket end-to-end charges diverged"
            ),
            RankEngine::PointerJump => {}
        }
    }
}

/// The scatter engines are two physical layouts of the same disjoint
/// stores: identical decompositions and partitions, byte-identical
/// charges, under every rank engine and both modes.
#[test]
fn scatter_engines_are_observably_identical() {
    let g = sfcp_forest::generators::random_function(40_000, 23);
    for rank in rank_engines() {
        for mode in [Mode::Sequential, Mode::Parallel] {
            let direct = Ctx::new(mode).with_rank_engine(rank);
            let combining = Ctx::new(mode)
                .with_rank_engine(rank)
                .with_scatter_engine(ScatterEngine::Combining);
            let a = decompose(&direct, &g, CycleMethod::Euler);
            let b = decompose(&combining, &g, CycleMethod::Euler);
            assert_eq!(a, b, "scatter engines disagree ({rank:?}, {mode:?})");
            assert_eq!(
                direct.stats(),
                combining.stats(),
                "scatter-engine charges diverged ({rank:?}, {mode:?})"
            );
        }
    }
    let inst = Instance::random(20_000, 4, 31);
    let direct = Ctx::parallel();
    let combining = Ctx::parallel().with_scatter_engine(ScatterEngine::Combining);
    let a = coarsest_partition(&direct, &inst, Algorithm::Parallel);
    let b = coarsest_partition(&combining, &inst, Algorithm::Parallel);
    assert!(a.same_partition(&b), "scatter engines disagree end to end");
    assert_eq!(
        direct.stats(),
        combining.stats(),
        "scatter-engine charges diverged end to end"
    );
}

/// The tentpole acceptance property: after one warm-up run, repeated runs of
/// the doubling loop (O(log n) dense-rank rounds each) serve every scratch
/// checkout from the workspace pool — zero fresh allocations per run.
#[test]
fn doubling_loop_allocates_o1_buffers_per_run() {
    let inst = Instance::random(30_000, 4, 11);
    let ctx = Ctx::parallel();
    let _ = coarsest_partition(&ctx, &inst, Algorithm::Doubling); // warm up
    let before = ctx.workspace().stats();
    for _ in 0..3 {
        let _ = coarsest_partition(&ctx, &inst, Algorithm::Doubling);
    }
    let after = ctx.workspace().stats();
    assert!(
        after.checkouts > before.checkouts,
        "rounds must use the workspace"
    );
    assert_eq!(
        after.misses, before.misses,
        "warm doubling runs must not allocate fresh scratch buffers"
    );
}

/// Same property for the full parallel algorithm (m.s.p. + tree labelling).
#[test]
fn parallel_algorithm_allocates_o1_buffers_per_run() {
    let inst = Instance::random(30_000, 4, 13);
    let ctx = Ctx::parallel();
    let _ = coarsest_partition(&ctx, &inst, Algorithm::Parallel); // warm up
    let before = ctx.workspace().stats();
    for _ in 0..3 {
        let _ = coarsest_partition(&ctx, &inst, Algorithm::Parallel);
    }
    let after = ctx.workspace().stats();
    assert!(
        after.checkouts > before.checkouts,
        "runs must use the workspace"
    );
    assert_eq!(
        after.misses, before.misses,
        "warm parallel runs must not allocate fresh scratch buffers"
    );
}

//! Cross-engine regression tests for the zero-allocation sort/rank engine.
//!
//! The packed record engine must be observably identical to the permutation
//! baseline everywhere except wall-clock time and allocation count:
//!
//! * identical partitions from every algorithm,
//! * byte-identical work/depth charges (the tracker-based complexity tables
//!   must be engine-independent),
//! * O(1) workspace allocations per *run* once the pools are warm (not per
//!   doubling round).

use sfcp::{coarsest_partition, Algorithm, Instance};
use sfcp_forest::{cycles::CycleMethod, decompose};
use sfcp_pram::{Ctx, Mode, SortEngine};

fn instances() -> Vec<Instance> {
    vec![
        Instance::paper_example(),
        Instance::random(3000, 4, 7),
        Instance::random_cycles(&[2, 3, 4, 6, 6, 12, 24], 2, 2),
        Instance::periodic_cycles(9, 24, 6, 3, 3),
        Instance::deep(2000, 5, 2, 4),
    ]
}

#[test]
fn parallel_algorithm_is_engine_independent() {
    for inst in instances() {
        for mode in [Mode::Sequential, Mode::Parallel] {
            let packed = Ctx::new(mode);
            let baseline = Ctx::new(mode).with_sort_engine(SortEngine::Permutation);
            let a = coarsest_partition(&packed, &inst, Algorithm::Parallel);
            let b = coarsest_partition(&baseline, &inst, Algorithm::Parallel);
            assert!(
                a.same_partition(&b),
                "engines disagree on n={}, mode={mode:?}",
                inst.len()
            );
            assert_eq!(
                packed.stats(),
                baseline.stats(),
                "work/depth diverged on n={}, mode={mode:?}",
                inst.len()
            );
        }
    }
}

#[test]
fn doubling_algorithm_is_engine_independent() {
    for inst in instances() {
        let packed = Ctx::parallel();
        let baseline = Ctx::parallel().with_sort_engine(SortEngine::Permutation);
        let a = coarsest_partition(&packed, &inst, Algorithm::Doubling);
        let b = coarsest_partition(&baseline, &inst, Algorithm::Doubling);
        assert!(a.same_partition(&b), "engines disagree on n={}", inst.len());
        assert_eq!(
            packed.stats(),
            baseline.stats(),
            "work/depth diverged on n={}",
            inst.len()
        );
    }
}

/// `decompose` itself must be engine- and method-stable: every `CycleMethod`
/// × `SortEngine` combination produces the identical `Decomposition`, and for
/// a fixed method the two engines charge identical work/depth.
#[test]
fn decompose_is_engine_and_method_independent() {
    let graphs = [
        sfcp_forest::generators::paper_example_function(),
        sfcp_forest::generators::random_function(5000, 3),
        sfcp_forest::generators::random_function(40_000, 17), // contraction path
        sfcp_forest::generators::long_tail(3000, 5, 2),
    ];
    for g in &graphs {
        let mut first = None;
        for method in [
            CycleMethod::Sequential,
            CycleMethod::Jump,
            CycleMethod::Euler,
        ] {
            let packed = Ctx::parallel();
            let baseline = Ctx::parallel().with_sort_engine(SortEngine::Permutation);
            let a = decompose(&packed, g, method);
            let b = decompose(&baseline, g, method);
            assert_eq!(
                a,
                b,
                "engines disagree on decomposition (n={}, {method:?})",
                g.len()
            );
            assert_eq!(
                packed.stats(),
                baseline.stats(),
                "engine charges diverged (n={}, {method:?})",
                g.len()
            );
            match &first {
                None => first = Some(a),
                Some(reference) => assert_eq!(
                    reference,
                    &a,
                    "methods disagree on decomposition (n={}, {method:?})",
                    g.len()
                ),
            }
        }
    }
}

/// The tentpole acceptance property: after one warm-up run, repeated runs of
/// the doubling loop (O(log n) dense-rank rounds each) serve every scratch
/// checkout from the workspace pool — zero fresh allocations per run.
#[test]
fn doubling_loop_allocates_o1_buffers_per_run() {
    let inst = Instance::random(30_000, 4, 11);
    let ctx = Ctx::parallel();
    let _ = coarsest_partition(&ctx, &inst, Algorithm::Doubling); // warm up
    let before = ctx.workspace().stats();
    for _ in 0..3 {
        let _ = coarsest_partition(&ctx, &inst, Algorithm::Doubling);
    }
    let after = ctx.workspace().stats();
    assert!(
        after.checkouts > before.checkouts,
        "rounds must use the workspace"
    );
    assert_eq!(
        after.misses, before.misses,
        "warm doubling runs must not allocate fresh scratch buffers"
    );
}

/// Same property for the full parallel algorithm (m.s.p. + tree labelling).
#[test]
fn parallel_algorithm_allocates_o1_buffers_per_run() {
    let inst = Instance::random(30_000, 4, 13);
    let ctx = Ctx::parallel();
    let _ = coarsest_partition(&ctx, &inst, Algorithm::Parallel); // warm up
    let before = ctx.workspace().stats();
    for _ in 0..3 {
        let _ = coarsest_partition(&ctx, &inst, Algorithm::Parallel);
    }
    let after = ctx.workspace().stats();
    assert!(
        after.checkouts > before.checkouts,
        "runs must use the workspace"
    );
    assert_eq!(
        after.misses, before.misses,
        "warm parallel runs must not allocate fresh scratch buffers"
    );
}

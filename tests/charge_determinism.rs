//! Charge-determinism regression: tracked work/depth must be bit-identical
//! across thread counts.
//!
//! DESIGN.md's "Charge discipline" demands that the complexity tables be a
//! property of the algorithm, never of the machine: the same run on 1, 2, or
//! all hardware threads must charge exactly the same work and depth (only
//! wall-clock may differ).  This guards the invariant before any NUMA/grain
//! tuning lands — a charge that accidentally depends on
//! `current_num_threads` (e.g. a per-thread block count leaking into a
//! charged loop) breaks this test immediately.  The `RankEngine` ×
//! `SortEngine` grid keeps every engine combination under the same gate: the
//! `CacheBucket` wavefront chunking, the contraction walks, and the CSR /
//! radix block plans are all thread-count-sensitive *physically* and must
//! stay thread-count-invisible in charges.

use sfcp::{coarsest_partition, Algorithm, Instance};
use sfcp_forest::cycles::CycleMethod;
use sfcp_pram::{Ctx, Mode, RankEngine, ScatterEngine, SortEngine, Stats, Topology};

/// Run `f` under a virtual rayon pool of `threads` workers and return the
/// charges it reports.
fn charges_with_threads<F: Fn() -> Stats>(threads: usize, f: F) -> Stats {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.install(f)
}

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(4, usize::from);
    let mut counts = vec![1, 2, max];
    counts.dedup();
    counts
}

fn rank_engines() -> [RankEngine; 3] {
    RankEngine::ALL
}

#[test]
fn coarsest_parallel_charges_are_thread_count_independent() {
    for inst in [
        Instance::random(20_000, 4, 5),
        Instance::random_cycles(&[2, 3, 4, 6, 6, 12, 24], 2, 2),
        Instance::deep(5_000, 5, 2, 4),
    ] {
        let mut baseline: Option<Stats> = None;
        for threads in thread_counts() {
            let stats = charges_with_threads(threads, || {
                let ctx = Ctx::new(Mode::Parallel);
                let q = coarsest_partition(&ctx, &inst, Algorithm::Parallel);
                std::hint::black_box(q.num_blocks());
                ctx.stats()
            });
            match &baseline {
                None => baseline = Some(stats),
                Some(b) => assert_eq!(
                    *b,
                    stats,
                    "charges diverged at {threads} threads (n={})",
                    inst.len()
                ),
            }
        }
    }
}

/// Every `ScatterEngine` × `RankEngine` × `SortEngine` combination must
/// charge bit-identically across thread counts on the full algorithm — the
/// acceptance gate of the engine subsystems (the scatter dimension guards
/// the write-combining tiles' task plans, which are physically blocked but
/// must stay charge-invisible).
#[test]
fn coarsest_parallel_engine_grid_is_thread_count_independent() {
    let inst = Instance::random(20_000, 4, 11);
    for scatter in ScatterEngine::ALL {
        for rank in rank_engines() {
            for sort in [SortEngine::Packed, SortEngine::Permutation] {
                let mut baseline: Option<Stats> = None;
                for threads in thread_counts() {
                    let stats = charges_with_threads(threads, || {
                        let ctx = Ctx::new(Mode::Parallel)
                            .with_rank_engine(rank)
                            .with_sort_engine(sort)
                            .with_scatter_engine(scatter);
                        let q = coarsest_partition(&ctx, &inst, Algorithm::Parallel);
                        std::hint::black_box(q.num_blocks());
                        ctx.stats()
                    });
                    match &baseline {
                        None => baseline = Some(stats),
                        Some(b) => assert_eq!(
                            *b, stats,
                            "charges diverged at {threads} threads ({scatter:?}, {rank:?}, {sort:?})"
                        ),
                    }
                }
            }
        }
    }
}

/// Footprint-adaptive selection must be charge-invisible: `Auto` reads the
/// probed topology to pick a physical engine, but the pick — and the
/// topology itself — may never reach a charged quantity.  Pins the
/// decomposition charges bit-identical across `Auto` and both explicit
/// engines at every size, *and* across mocked topologies that force `Auto`
/// to resolve each way (a 1-byte LLC makes every destination "past the
/// LLC" → `Combining` everywhere; a 2^40-byte LLC makes everything fit →
/// `Direct` everywhere; the mocks also swing the physical radix-counter
/// and CSR budgets, exercising the model-vs-physical block-plan split).
#[test]
fn auto_engine_selection_is_charge_invisible() {
    for n in [3_000, 60_000] {
        let g = sfcp_forest::generators::random_function(n, 41);
        let run = |ctx: Ctx| {
            let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
            std::hint::black_box(d.num_cycles());
            ctx.stats()
        };
        let baseline = run(Ctx::new(Mode::Parallel).with_scatter_engine(ScatterEngine::Direct));
        for scatter in ScatterEngine::ALL {
            let probed = run(Ctx::new(Mode::Parallel).with_scatter_engine(scatter));
            assert_eq!(
                baseline, probed,
                "charges diverged under {scatter:?} on the probed topology (n={n})"
            );
            for (label, topo) in [
                ("tiny-LLC", Topology::fallback().with_llc_bytes(1)),
                ("huge-LLC", Topology::fallback().with_llc_bytes(1 << 40)),
            ] {
                let mocked = run(Ctx::new(Mode::Parallel)
                    .with_scatter_engine(scatter)
                    .with_topology(topo));
                assert_eq!(
                    baseline, mocked,
                    "charges diverged under {scatter:?} on the {label} mock (n={n})"
                );
            }
        }
    }
}

/// Tracing must be charge-invisible: the span guards and engine-decision
/// records read the tracker and the clock but never feed them, so a traced
/// decompose must charge bit-identically to an untraced one — across the
/// full `ScatterEngine` × `RankEngine` × `SortEngine` grid (the spans sit
/// inside every engine pass, so each engine's pass structure is exercised).
/// This is the contract that lets `bench_json` harvest its per-row span
/// summaries from the same tracked pass that labels the charge columns.
#[test]
fn tracing_is_charge_invisible_across_engine_grid() {
    let g = sfcp_forest::generators::random_function(20_000, 17);
    for scatter in ScatterEngine::ALL {
        for rank in rank_engines() {
            for sort in [SortEngine::Packed, SortEngine::Permutation] {
                let run = |traced: bool| {
                    let mut ctx = Ctx::new(Mode::Parallel)
                        .with_rank_engine(rank)
                        .with_sort_engine(sort)
                        .with_scatter_engine(scatter);
                    if traced {
                        ctx = ctx.with_tracing();
                    }
                    let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
                    std::hint::black_box(d.num_cycles());
                    (ctx.stats(), ctx.trace().snapshot().spans.len())
                };
                let (untraced, no_spans) = run(false);
                let (traced, spans) = run(true);
                assert_eq!(
                    untraced, traced,
                    "tracing changed charges ({scatter:?}, {rank:?}, {sort:?})"
                );
                assert_eq!(no_spans, 0, "untraced run must record nothing");
                assert!(spans > 0, "traced run must record the phase spans");
            }
        }
    }
}

#[test]
fn decompose_charges_are_thread_count_independent() {
    let g = sfcp_forest::generators::random_function(50_000, 23);
    for method in [
        CycleMethod::Sequential,
        CycleMethod::Jump,
        CycleMethod::Euler,
    ] {
        for rank in rank_engines() {
            let mut baseline: Option<Stats> = None;
            for threads in thread_counts() {
                let stats = charges_with_threads(threads, || {
                    let ctx = Ctx::new(Mode::Parallel).with_rank_engine(rank);
                    let d = sfcp_forest::decompose(&ctx, &g, method);
                    std::hint::black_box(d.num_cycles());
                    ctx.stats()
                });
                match &baseline {
                    None => baseline = Some(stats),
                    Some(b) => assert_eq!(
                        *b, stats,
                        "decompose charges diverged at {threads} threads ({method:?}, {rank:?})"
                    ),
                }
            }
        }
    }
}

/// Sequential mode must also charge exactly like 1-thread parallel mode for
/// the decomposition pipeline (the loops are the same code path).
#[test]
fn decompose_sequential_mode_matches_parallel_charges() {
    let g = sfcp_forest::generators::random_function(30_000, 7);
    let seq = Ctx::sequential();
    let _ = sfcp_forest::decompose(&seq, &g, CycleMethod::Euler);
    let par = charges_with_threads(1, || {
        let ctx = Ctx::new(Mode::Parallel);
        let _ = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
        ctx.stats()
    });
    // The blocked scan charges differ between modes by design (see scan.rs);
    // everything else is identical, so the two must stay within a tight
    // band and the parallel charges must be thread-count independent (the
    // strict equality across thread counts is asserted above).
    let ratio = seq.stats().work as f64 / par.work as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "sequential/parallel work diverged: {} vs {}",
        seq.stats().work,
        par.work
    );
}

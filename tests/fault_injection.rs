//! The deterministic fault-injection sweep (DESIGN.md, "Failure model and
//! recovery").
//!
//! For every engine combination, warm a context, count the injection points
//! of one decompose (workspace checkouts and engine passes), then arm a
//! fault at **every** point in turn: each injection must surface as
//! `Error::Injected` through the `try_` surface, leave the workspace fully
//! reconciled (no outstanding checkouts, stable pooled bytes), and a re-run
//! on the recovered context must reproduce the baseline result and charges
//! bit-identically.
//!
//! The fault layer is process-global, so every test here serializes on one
//! lock; this suite lives in its own test binary so it never shares a
//! process with unrelated parallel tests.

use sfcp_repro::sfcp::{try_coarsest_partition, Algorithm, DecomposeError, Instance};
use sfcp_repro::sfcp_forest::cycles::CycleMethod;
use sfcp_repro::sfcp_forest::{decompose, generators, try_decompose};
use sfcp_repro::sfcp_pram::faults::{self, FaultKind, FaultSite};
use sfcp_repro::sfcp_pram::{Ctx, Error, RankEngine, ScatterEngine, SortEngine};

static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Serialize on the process-global fault layer, tolerating a poisoned lock
/// (an earlier failed test must not cascade).
fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Injected faults unwind on purpose, thousands of times per sweep; silence
/// the default "thread panicked" spew for the duration of a closure.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(prev);
    result
}

fn sweep_size() -> usize {
    // Tier-1 `cargo test -q` runs this binary unoptimized; the release sweep
    // in CI runs the issue-spec size.
    if cfg!(debug_assertions) {
        20_000
    } else {
        100_000
    }
}

#[test]
fn sweep_every_injection_point_across_the_engine_grid() {
    let _g = lock();
    faults::reset();
    let n = sweep_size();
    let g = generators::random_function(n, 0xfa017);

    with_quiet_panics(|| {
        for sort in [SortEngine::Packed, SortEngine::Permutation] {
            for rank in RankEngine::ALL {
                for scatter in ScatterEngine::ALL {
                    let ctx = Ctx::parallel()
                        .with_sort_engine(sort)
                        .with_rank_engine(rank)
                        .with_scatter_engine(scatter);

                    // Warm the pools so the baseline run is allocation-free
                    // and the pooled-byte level is at its fixpoint.
                    for _ in 0..3 {
                        let _ = decompose(&ctx, &g, CycleMethod::Euler);
                    }

                    ctx.reset_stats();
                    let baseline = decompose(&ctx, &g, CycleMethod::Euler);
                    let baseline_stats = ctx.stats();
                    let baseline_pooled = ctx.workspace().pooled_bytes();
                    assert_eq!(ctx.workspace().stats().outstanding(), 0);

                    // Learn how many injection points one warm run has.
                    faults::start_counting();
                    let _ = decompose(&ctx, &g, CycleMethod::Euler);
                    let (checkouts, passes) = faults::counts();
                    faults::reset();
                    assert!(
                        checkouts > 0 && passes > 0,
                        "the hooks must see a warm decompose \
                         ({sort:?}/{rank:?}/{scatter:?})"
                    );

                    let points = (0..checkouts)
                        .map(|k| (FaultSite::Checkout, k))
                        .chain((0..passes).map(|k| (FaultSite::EnginePass, k)));
                    for (site, k) in points {
                        // Exercise both simulated failure kinds across the
                        // sweep; they share the unwind-recovery path.
                        let kind = if k % 2 == 0 {
                            FaultKind::Panic
                        } else {
                            FaultKind::AllocFail
                        };
                        faults::arm(site, k, kind);
                        let err = try_decompose(&ctx, &g, CycleMethod::Euler)
                            .expect_err("an armed fault must fail the run");
                        faults::reset();
                        match err {
                            Error::Injected(fault) => {
                                assert_eq!(fault.site, site);
                                assert_eq!(fault.index, k);
                                assert_eq!(fault.kind, kind);
                            }
                            other => {
                                panic!("expected the injected fault at {site:?} #{k}, got {other}")
                            }
                        }

                        // Recovery (already run by try_decompose): pools
                        // reconciled and at their warm byte level.
                        let ws = ctx.workspace().stats();
                        assert_eq!(ws.outstanding(), 0, "{site:?} #{k} leaked");
                        assert_eq!(
                            ctx.workspace().pooled_bytes(),
                            baseline_pooled,
                            "{site:?} #{k} changed the pooled-byte level"
                        );

                        // The recovered context must reproduce the baseline
                        // bit-identically: same result, same charges.
                        ctx.reset_stats();
                        let rerun = decompose(&ctx, &g, CycleMethod::Euler);
                        assert_eq!(
                            ctx.stats(),
                            baseline_stats,
                            "post-recovery charges diverged after {site:?} #{k} \
                             ({sort:?}/{rank:?}/{scatter:?})"
                        );
                        assert_eq!(
                            rerun, baseline,
                            "post-recovery result diverged after {site:?} #{k}"
                        );
                    }
                }
            }
        }
    });
    faults::reset();
}

#[test]
fn injected_faults_surface_through_the_solver_facade() {
    let _g = lock();
    faults::reset();
    let instance = Instance::random(5_000, 3, 11);
    let ctx = Ctx::parallel();
    let baseline = try_coarsest_partition(&ctx, &instance, Algorithm::Parallel).unwrap();

    let err = with_quiet_panics(|| {
        faults::arm(FaultSite::Checkout, 0, FaultKind::AllocFail);
        let err = try_coarsest_partition(&ctx, &instance, Algorithm::Parallel)
            .expect_err("an armed fault must fail the solve");
        faults::reset();
        err
    });
    assert!(
        matches!(err, DecomposeError::Execution(Error::Injected(_))),
        "got {err}"
    );
    assert!(err.is_retryable());
    assert_eq!(ctx.workspace().stats().outstanding(), 0);

    // Retrying the identical call on the recovered context succeeds.
    let retried = try_coarsest_partition(&ctx, &instance, Algorithm::Parallel).unwrap();
    assert!(retried.same_partition(&baseline));
    faults::reset();
}

/// Recovery must leave the trace recorder coherent (DESIGN.md §12): a span
/// held open across `Ctx::recover` is orphaned — its baseline counters
/// predate the tracker/workspace reset, so closing it normally would record
/// garbage deltas.  `recover` (and `reset_stats`) invalidate the open
/// stack, the orphaned guard discards at drop, and a post-recovery traced
/// run records a fresh tree whose root charge matches the tracker exactly.
#[test]
fn recovery_discards_orphaned_spans() {
    let _g = lock();
    faults::reset();
    let g = generators::random_function(10_000, 5);
    let ctx = Ctx::parallel().with_tracing();
    let _ = decompose(&ctx, &g, CycleMethod::Euler);

    // Direct orphan: recover while a span is open.
    ctx.trace().clear();
    {
        let _orphan = ctx.span("orphan");
        ctx.recover();
    }
    let snap = ctx.trace().snapshot();
    assert!(
        snap.spans_named("orphan").is_empty(),
        "an orphaned span must be discarded, not recorded: {snap:?}"
    );
    assert_eq!(snap.open_discarded, 1);

    // Injected mid-pipeline fault: the unwind closes the in-flight guards
    // (they measured real pre-fault execution) and `try_decompose`'s
    // recovery invalidates whatever the unwind left open.  The next traced
    // run must then record a coherent tree — exactly one root whose charge
    // delta equals the tracker's run total (an un-discarded stale parent
    // would nest the new tree and skew every delta).
    let err = with_quiet_panics(|| {
        faults::arm(FaultSite::EnginePass, 3, FaultKind::Panic);
        let err = try_decompose(&ctx, &g, CycleMethod::Euler)
            .expect_err("an armed fault must fail the run");
        faults::reset();
        err
    });
    assert!(matches!(err, Error::Injected(_)), "got {err}");
    ctx.trace().clear();
    ctx.reset_stats();
    let d = decompose(&ctx, &g, CycleMethod::Euler);
    std::hint::black_box(d.num_cycles());
    let snap = ctx.trace().snapshot();
    let roots = snap.spans_named("decompose");
    assert_eq!(roots.len(), 1, "one pipeline root: {snap:?}");
    assert_eq!(roots[0].parent, None, "recovery left a stale open span");
    assert_eq!(roots[0].depth, 0);
    assert_eq!(
        roots[0].charge,
        ctx.stats(),
        "the root span's charge delta must equal the tracker's run total"
    );
    assert_eq!(snap.open_discarded, 0);
    faults::reset();
}

#[test]
fn disabled_layer_never_perturbs_results_or_charges() {
    let _g = lock();
    faults::reset();
    let g = generators::random_function(10_000, 3);
    let quiet = Ctx::parallel();
    let _ = decompose(&quiet, &g, CycleMethod::Euler);
    quiet.reset_stats();
    let a = decompose(&quiet, &g, CycleMethod::Euler);
    let quiet_stats = quiet.stats();

    // A counting (but never firing) layer sees the same run.
    let counted = Ctx::parallel();
    let _ = decompose(&counted, &g, CycleMethod::Euler);
    counted.reset_stats();
    faults::start_counting();
    let b = decompose(&counted, &g, CycleMethod::Euler);
    faults::reset();
    assert_eq!(a, b);
    assert_eq!(quiet_stats, counted.stats());
}

/// The service-path sweep: a fault armed at **every** checkout/engine-pass
/// site of a batched request must surface over the wire as a typed
/// retryable error on every cohort member, leave the serving worker's
/// workspace reconciled (`outstanding == 0`, observed via a probe on the
/// same warm context), and the next identical request must reproduce the
/// baseline answer and charges bit-identically.
#[test]
fn service_path_sweep_recovers_warm_workers() {
    use sfcp_repro::sfcp_service::{
        Client, ComputeRequest, ErrorCode, ReplyPayload, Server, ServerConfig,
    };

    let _g = lock();
    faults::reset();
    let server = Server::start(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let member_n = if cfg!(debug_assertions) { 400 } else { 4_000 };
    let members: Vec<Instance> = (0..5)
        .map(|j| Instance::random(member_n + j * 37, 2 + j % 3, 0xfa + j as u64))
        .collect();
    let reqs: Vec<ComputeRequest> = members
        .iter()
        .map(|m| ComputeRequest::partition(m.f().to_vec(), m.blocks().to_vec()).no_cache())
        .collect();

    let run_batch = |client: &mut Client| client.batch(&reqs).expect("transport");

    // Warm the worker, then record the baseline cohort (answers + charges).
    let _ = run_batch(&mut client);
    let baseline: Vec<_> = run_batch(&mut client)
        .into_iter()
        .map(|r| r.outcome.expect("baseline member"))
        .collect();

    // Count the injection points of one warm batched serve.  Only the
    // serving worker runs engine code while we wait on the response, so the
    // window sees exactly that run.
    faults::start_counting();
    let _ = run_batch(&mut client);
    let (checkouts, passes) = faults::counts();
    faults::reset();
    assert!(
        checkouts > 0 && passes > 0,
        "hooks must see the fused serve"
    );

    with_quiet_panics(|| {
        let points = (0..checkouts)
            .map(|k| (FaultSite::Checkout, k))
            .chain((0..passes).map(|k| (FaultSite::EnginePass, k)));
        for (site, k) in points {
            let kind = if k % 2 == 0 {
                FaultKind::Panic
            } else {
                FaultKind::AllocFail
            };
            faults::arm(site, k, kind);
            let responses = run_batch(&mut client);
            faults::reset();

            // Every cohort member fails typed and retryable.
            for response in &responses {
                let err = response
                    .outcome
                    .as_ref()
                    .expect_err("an armed fault must fail the cohort");
                assert_eq!(err.code, ErrorCode::Execution, "{site:?} #{k}: {err}");
                assert!(err.retryable, "{site:?} #{k} must be retryable");
            }

            // The worker recovered: no outstanding checkouts.
            let probe = client.probe().expect("transport").expect("probe");
            let ReplyPayload::Probe { outstanding, .. } = probe.payload else {
                panic!("probe payload expected");
            };
            assert_eq!(outstanding, 0, "{site:?} #{k} leaked a checkout");

            // The same warm worker reproduces the baseline bit-identically.
            let rerun = run_batch(&mut client);
            for (base, got) in baseline.iter().zip(&rerun) {
                let reply = got.outcome.as_ref().expect("post-recovery member");
                assert_eq!(
                    reply.payload, base.payload,
                    "{site:?} #{k} changed an answer"
                );
                assert_eq!(
                    (reply.work, reply.rounds),
                    (base.work, base.rounds),
                    "{site:?} #{k} changed the charges"
                );
            }
        }
    });
    faults::reset();
    server.shutdown();
}

//! End-to-end coverage of the CSR builder's *bucketed* regime.
//!
//! Every decomposition call site hands `build_csr` a key space of at most
//! `n ≤ 2^22`, so the packed-word radix fallback (key spaces past the
//! direct-build counter budget) used to run only in unit tests.  The
//! sharded/contracted multigraph workload (`sfcp_bench::workloads`) is a
//! real edge stream over a `2^23` key space; these tests pin that the
//! workload actually lands in the bucketed regime and that the regime's
//! output, charges, and allocation behaviour hold end to end.

use sfcp_bench::workloads::sharded_multigraph;
use sfcp_parprim::csr::{DIRECT_BUILD_MAX_KEYS, SEQUENTIAL_BUILD_MAX};
use sfcp_pram::{Ctx, Mode, SortEngine};

/// Straight-line reference: push every pair into per-key vectors.
fn naive_csr(
    num_keys: usize,
    edges: impl Iterator<Item = Option<(u32, u32)>>,
) -> (Vec<u32>, Vec<u32>) {
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); num_keys];
    for pair in edges.flatten() {
        groups[pair.0 as usize].push(pair.1);
    }
    let mut offsets = vec![0u32; num_keys + 1];
    let mut items = Vec::new();
    for (k, g) in groups.iter().enumerate() {
        items.extend_from_slice(g);
        offsets[k + 1] = items.len() as u32;
    }
    (offsets, items)
}

/// The workload must satisfy the packed engine's bucketed-dispatch
/// condition: a stream past the sequential threshold over a key space past
/// the direct-build counter budget.
#[test]
fn workload_lands_in_the_bucketed_regime() {
    let g = sharded_multigraph(60_000, 1);
    assert!(
        g.num_keys > DIRECT_BUILD_MAX_KEYS,
        "key space {} must exceed the direct budget {DIRECT_BUILD_MAX_KEYS}",
        g.num_keys
    );
    assert!(g.num_slots() > SEQUENTIAL_BUILD_MAX);
}

/// The bucketed build must agree with the sequential baseline engine and
/// the naive reference, and charge identically, in both modes.
#[test]
fn bucketed_build_matches_baseline_end_to_end() {
    let g = sharded_multigraph(60_000, 2);
    let expected = naive_csr(g.num_keys, (0..g.num_slots()).map(|s| g.edge(s)));
    let mut stats = Vec::new();
    for mode in [Mode::Sequential, Mode::Parallel] {
        for engine in [SortEngine::Packed, SortEngine::Permutation] {
            let ctx = Ctx::new(mode).with_sort_engine(engine);
            let got = g.build_csr(&ctx);
            assert_eq!(got, expected, "{engine:?}, {mode:?}");
            stats.push(ctx.stats());
        }
    }
    assert!(
        stats.windows(2).all(|w| w[0] == w[1]),
        "engines/modes must charge identically on the bucketed workload, got {stats:?}"
    );
    // Sanity: the stream really exercises grouping (non-empty, with gaps).
    let (offsets, items) = expected;
    assert!(!items.is_empty());
    assert!(offsets.windows(2).any(|w| w[0] == w[1]), "empty keys exist");
    assert!(
        offsets.windows(2).any(|w| w[1] - w[0] > 8),
        "skewed supernode groups exist"
    );
}

/// Warm bucketed builds serve every checkout from the workspace pools —
/// the zero-allocation contract extends to the fallback regime.
#[test]
fn warm_bucketed_builds_allocate_nothing() {
    let g = sharded_multigraph(40_000, 3);
    let ctx = Ctx::parallel();
    let mut offsets = Vec::new();
    let mut items = Vec::new();
    let build = |offsets: &mut Vec<u32>, items: &mut Vec<u32>| {
        sfcp_parprim::csr::build_csr_into(
            &ctx,
            g.num_keys,
            g.num_slots(),
            |s| g.edge(s),
            offsets,
            items,
        );
    };
    build(&mut offsets, &mut items); // warm up
    let before = ctx.workspace().stats();
    for _ in 0..3 {
        build(&mut offsets, &mut items);
    }
    let after = ctx.workspace().stats();
    assert!(after.checkouts > before.checkouts);
    assert_eq!(
        after.misses, before.misses,
        "warm bucketed builds must not allocate fresh buffers"
    );
    assert_eq!(after.outstanding(), 0);
}

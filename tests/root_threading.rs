//! Root-threading regression: `decompose` computes the root array **once**.
//!
//! PR 5 restructured the decomposition so the pointer-jumping root
//! computation runs a single time per decomposition and is threaded through
//! the Euler-tour finish (`EulerTour::from_arc_ranks_with_roots`), the
//! `cycle_of` propagation, and — via `Decomposition::roots` — the tree
//! labelling of the parallel algorithm (which used to run its own third
//! pass).  `sfcp_parprim::jump::find_roots_invocations` counts every
//! `find_roots_into` call process-wide, so this file holds exactly one test:
//! a second `#[test]` here would race the counter.

use sfcp_forest::cycles::CycleMethod;
use sfcp_parprim::jump::find_roots_invocations;
use sfcp_pram::{Ctx, RankEngine};

#[test]
fn decompose_runs_find_roots_exactly_once() {
    let g = sfcp_forest::generators::random_function(40_000, 77);
    for engine in RankEngine::ALL {
        let ctx = Ctx::parallel().with_rank_engine(engine);
        let before = find_roots_invocations();
        let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
        let after = find_roots_invocations();
        assert_eq!(
            after - before,
            1,
            "decompose must compute the root array exactly once ({engine:?})"
        );
        // The threaded array is the root array: every root is a cycle node,
        // and following parents from x must land on roots[x].
        for x in [0u32, 1, 17, 39_999] {
            let r = d.roots[x as usize];
            assert!(d.is_cycle[r as usize]);
            assert_eq!(g.iterate(x, d.levels[x as usize] as usize), r);
            assert_eq!(d.root_of(x), r);
        }
    }

    // The full parallel algorithm adds no further root computations beyond
    // the one inside its decompose (tree labelling reads the threaded
    // array).
    let inst = sfcp::Instance::random(20_000, 3, 5);
    let ctx = Ctx::parallel();
    let before = find_roots_invocations();
    let q = sfcp::coarsest_partition(&ctx, &inst, sfcp::Algorithm::Parallel);
    std::hint::black_box(q.num_blocks());
    let after = find_roots_invocations();
    assert_eq!(
        after - before,
        1,
        "coarsest_parallel must reuse decompose's root array"
    );
}

//! Property tests for the structural invariants of [`sfcp_forest::Decomposition`]
//! against a naive sequential reference.
//!
//! The decomposition pipeline is a chain of parallel passes over workspace
//! scratch (compaction, cycle-min contraction, list ranking, Euler tours); a
//! bug in any buffer lifetime or scatter bound shows up as a violated
//! structural invariant.  Each randomized functional graph is checked for:
//!
//! * `cycle_of` consistency with `f` (a node and its image share a cycle id),
//! * `cycle_pos` being a valid rotation starting at the minimum-id leader,
//! * `levels[x] == 0 ⟺ is_cycle[x]`, levels increasing away from cycles,
//! * the CSR cycles partitioning exactly the cycle-node set.

use proptest::prelude::*;
use sfcp_forest::{cycles::CycleMethod, decompose, Decomposition, FunctionalGraph};
use sfcp_pram::Ctx;

/// Naive reference: cycle nodes by in-degree peeling, distances by walking.
struct Reference {
    is_cycle: Vec<bool>,
    /// Distance of every node to its cycle.
    levels: Vec<u32>,
    /// For cycle nodes, the members of their cycle in f-order starting at the
    /// smallest member; indexed by that smallest member (leader).
    cycles_by_leader: Vec<Vec<u32>>,
}

fn reference(f: &[u32]) -> Reference {
    let n = f.len();
    // Kahn-style peeling: whatever survives lies on a cycle.
    let mut indeg = vec![0u32; n];
    for &y in f {
        indeg[y as usize] += 1;
    }
    let mut queue: Vec<u32> = (0..n as u32).filter(|&x| indeg[x as usize] == 0).collect();
    let mut removed = vec![false; n];
    while let Some(x) = queue.pop() {
        removed[x as usize] = true;
        let y = f[x as usize] as usize;
        indeg[y] -= 1;
        if indeg[y] == 0 {
            queue.push(y as u32);
        }
    }
    let is_cycle: Vec<bool> = removed.iter().map(|&r| !r).collect();

    // Levels by walking until a cycle node is reached.
    let levels: Vec<u32> = (0..n)
        .map(|x| {
            let mut cur = x;
            let mut d = 0u32;
            while !is_cycle[cur] {
                cur = f[cur] as usize;
                d += 1;
                assert!(d as usize <= n, "walk escaped the graph");
            }
            d
        })
        .collect();

    // Cycles by walking from each leader (smallest member).
    let mut cycles_by_leader: Vec<Vec<u32>> = Vec::new();
    let mut seen = vec![false; n];
    for x in 0..n {
        if !is_cycle[x] || seen[x] {
            continue;
        }
        let mut members = vec![x as u32];
        seen[x] = true;
        let mut cur = f[x] as usize;
        while cur != x {
            seen[cur] = true;
            members.push(cur as u32);
            cur = f[cur] as usize;
        }
        // Rotate so the smallest member leads (x is the smallest only if the
        // scan reached this cycle through it first, which it did: x is the
        // smallest unseen index of the cycle, and indices are scanned in
        // ascending order).
        cycles_by_leader.push(members);
    }
    Reference {
        is_cycle,
        levels,
        cycles_by_leader,
    }
}

fn check_against_reference(g: &FunctionalGraph, d: &Decomposition) {
    let n = g.len();
    let f = g.table();
    let r = reference(f);

    assert_eq!(d.is_cycle, r.is_cycle, "cycle-node marks");
    assert_eq!(d.levels, r.levels, "levels");
    // levels[x] == 0 ⟺ is_cycle[x].
    for x in 0..n {
        assert_eq!(
            d.levels[x] == 0,
            d.is_cycle[x],
            "level/cycle mismatch at {x}"
        );
    }

    // CSR well-formedness and partition property.
    assert_eq!(d.cycle_offsets.len(), d.num_cycles() + 1);
    assert_eq!(d.cycle_offsets[0], 0);
    assert!(d.cycle_offsets.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(
        d.cycle_nodes.len(),
        r.is_cycle.iter().filter(|&&b| b).count(),
        "CSR cycles must partition exactly the cycle nodes"
    );
    let mut seen_in_csr = vec![false; n];
    for &x in &d.cycle_nodes {
        assert!(!seen_in_csr[x as usize], "node {x} appears in two cycles");
        seen_in_csr[x as usize] = true;
        assert!(r.is_cycle[x as usize], "tree node {x} inside a cycle");
    }

    // Per-cycle: leader is the minimum, order is a rotation of f starting at
    // the leader, cycle_of/cycle_pos agree.
    assert_eq!(d.num_cycles(), r.cycles_by_leader.len());
    for (c, expected) in r.cycles_by_leader.iter().enumerate() {
        let cycle = d.cycle(c);
        assert_eq!(cycle, expected.as_slice(), "cycle {c} member order");
        let leader = cycle[0];
        assert_eq!(*cycle.iter().min().unwrap(), leader, "leader must be min");
        for (i, &x) in cycle.iter().enumerate() {
            assert_eq!(d.cycle_of[x as usize], c as u32);
            assert_eq!(d.cycle_pos[x as usize], i as u32);
            assert_eq!(
                g.apply(x),
                cycle[(i + 1) % cycle.len()],
                "rotation broken at {x}"
            );
        }
    }

    // cycle_of is f-invariant on every node (trees inherit their root's id),
    // and cycle_pos is MAX exactly on tree nodes.
    for x in 0..n as u32 {
        assert_eq!(
            d.cycle_of[x as usize],
            d.cycle_of[g.apply(x) as usize],
            "cycle_of not f-invariant at {x}"
        );
        assert_eq!(
            d.cycle_pos[x as usize] == u32::MAX,
            !d.is_cycle[x as usize],
            "cycle_pos sentinel wrong at {x}"
        );
    }
}

#[test]
fn paper_example_matches_reference() {
    let ctx = Ctx::parallel();
    let g = sfcp_forest::generators::paper_example_function();
    for method in [
        CycleMethod::Sequential,
        CycleMethod::Jump,
        CycleMethod::Euler,
    ] {
        let d = decompose(&ctx, &g, method);
        check_against_reference(&g, &d);
    }
}

#[test]
fn structured_generators_match_reference() {
    let ctx = Ctx::parallel();
    for g in [
        FunctionalGraph::new(vec![0]),
        FunctionalGraph::new(vec![0; 50]),
        FunctionalGraph::new((0..50).collect()),
        sfcp_forest::generators::long_tail(400, 3, 11),
        sfcp_forest::generators::star(300, 4, 5),
        sfcp_forest::generators::equal_cycles(12, 9, 3),
    ] {
        let d = decompose(&ctx, &g, CycleMethod::Euler);
        check_against_reference(&g, &d);
    }
}

/// Large enough to push the cycle-min labeling onto its contraction path and
/// the list ranking onto the ruling set.
#[test]
fn large_random_graphs_match_reference() {
    let ctx = Ctx::parallel();
    for seed in 0..3 {
        let g = sfcp_forest::generators::random_function(30_000, seed);
        let d = decompose(&ctx, &g, CycleMethod::Euler);
        check_against_reference(&g, &d);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_functions_match_reference(
        n in 1usize..250,
        seed in 0u64..500,
    ) {
        let g = sfcp_forest::generators::random_function(n, seed);
        let ctx = Ctx::parallel().with_grain(32);
        let d = decompose(&ctx, &g, CycleMethod::Euler);
        check_against_reference(&g, &d);
    }

    #[test]
    fn cycle_collections_match_reference(
        lengths in proptest::collection::vec(1usize..15, 1..10),
        seed in 0u64..100,
    ) {
        let g = sfcp_forest::generators::cycles_only(&lengths, seed);
        let ctx = Ctx::parallel().with_grain(32);
        let d = decompose(&ctx, &g, CycleMethod::Euler);
        check_against_reference(&g, &d);
        prop_assert!(d.is_cycle.iter().all(|&b| b));
    }
}

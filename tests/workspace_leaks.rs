//! Workspace leak regression: every pool checkout must be returned.
//!
//! The decomposition pipeline checks dozens of scratch buffers out of the
//! `Ctx` workspace per run.  A leaked guard (e.g. a `Scratch` moved into a
//! struct that outlives the run, or a forgotten ping-pong partner) would make
//! the pools grow without bound across runs.  Two invariants:
//!
//! * after any run returns, no checkout is outstanding
//!   (`stats().outstanding() == 0`);
//! * once warm, repeated identical runs leave the pool population exactly
//!   stable (same number of pooled buffers before and after).

use sfcp::{coarsest_partition, Algorithm, Instance};
use sfcp_forest::cycles::CycleMethod;
use sfcp_parprim::euler::RootedForest;
use sfcp_pram::{Ctx, RankEngine, ScatterEngine};

/// `RootedForest::from_parents` used to allocate its `counts` and `children`
/// arrays fresh on every call.  With the CSR builder underneath, every
/// intermediate is a pool checkout: warm calls miss nothing, return
/// everything, and leave both the pool population and the pooled *bytes*
/// (which capture growth-after-checkout, e.g. the checked constructor's
/// walk stack) exactly stable.
#[test]
fn from_parents_returns_every_checkout() {
    let n = 50_000;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    for (i, p) in parent.iter_mut().enumerate().skip(1) {
        *p = (i / 3) as u32;
    }
    let ctx = Ctx::parallel();
    // Warm up both constructors (the checked walk uses extra pool buffers).
    let a = RootedForest::from_parents(&ctx, parent.clone());
    let b = RootedForest::from_parents_checked(&ctx, parent.clone()).unwrap();
    assert_eq!(a, b);
    assert_eq!(ctx.workspace().stats().outstanding(), 0);

    let warm_pool = ctx.workspace().pooled_buffers();
    let warm_bytes = ctx.workspace().pooled_bytes();
    let warm_misses = ctx.workspace().stats().misses;
    for round in 0..3 {
        let fast = RootedForest::from_parents(&ctx, parent.clone());
        let checked = RootedForest::from_parents_checked(&ctx, parent.clone()).unwrap();
        std::hint::black_box((fast.len(), checked.len()));
        assert_eq!(
            ctx.workspace().stats().outstanding(),
            0,
            "outstanding checkouts after from_parents (round {round})"
        );
        assert_eq!(
            ctx.workspace().pooled_buffers(),
            warm_pool,
            "pool population drifted on warm from_parents run {round}"
        );
        assert_eq!(
            ctx.workspace().pooled_bytes(),
            warm_bytes,
            "pooled bytes drifted on warm from_parents run {round}"
        );
    }
    assert_eq!(
        ctx.workspace().stats().misses,
        warm_misses,
        "warm from_parents runs must serve every checkout from the pools"
    );
}

#[test]
fn decompose_returns_every_checkout() {
    let g = sfcp_forest::generators::random_function(30_000, 41);
    let ctx = Ctx::parallel();
    for method in [
        CycleMethod::Sequential,
        CycleMethod::Jump,
        CycleMethod::Euler,
    ] {
        let d = sfcp_forest::decompose(&ctx, &g, method);
        std::hint::black_box(d.num_cycles());
        assert_eq!(
            ctx.workspace().stats().outstanding(),
            0,
            "outstanding checkouts after decompose ({method:?})"
        );
    }

    // The three-method warm-up leaves the pools populated, but the first
    // Euler-only runs may still pair requests with smaller pooled buffers
    // and grow them in place (pooled bytes are monotone and bounded, so a
    // couple of identical runs reach the fixed point).
    for _ in 0..2 {
        let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
        std::hint::black_box(d.num_cycles());
    }
    // Converged: the pool population (and its byte volume, which includes
    // any growth-after-checkout) must now be exactly stable across repeated
    // runs, and warm runs must not allocate.
    let warm_pool = ctx.workspace().pooled_buffers();
    let warm_bytes = ctx.workspace().pooled_bytes();
    let warm_stats = ctx.workspace().stats();
    for round in 0..3 {
        let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
        std::hint::black_box(d.num_cycles());
        assert_eq!(ctx.workspace().stats().outstanding(), 0);
        assert_eq!(
            ctx.workspace().pooled_buffers(),
            warm_pool,
            "pool population drifted on warm run {round}"
        );
        assert_eq!(
            ctx.workspace().pooled_bytes(),
            warm_bytes,
            "pooled bytes drifted on warm run {round}"
        );
    }
    assert_eq!(
        ctx.workspace().stats().misses,
        warm_stats.misses,
        "warm decompose runs must serve every checkout from the pools"
    );
}

/// The fused Euler ranking path — `decompose` assembling one `(2n + m)`
/// successor buffer and ranking it with a single engine invocation — must
/// return every checkout under every `RankEngine`, and once warm leave both
/// the pool population and the pooled bytes (which capture
/// growth-after-checkout of the fused buffers) exactly stable.
#[test]
fn fused_euler_ranking_returns_every_checkout() {
    let g = sfcp_forest::generators::random_function(30_000, 43);
    for engine in RankEngine::ALL {
        let ctx = Ctx::parallel().with_rank_engine(engine);
        // Warm to the pool fixed point (early runs may grow smaller pooled
        // buffers in place).
        for _ in 0..3 {
            let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
            std::hint::black_box(d.num_cycles());
            assert_eq!(
                ctx.workspace().stats().outstanding(),
                0,
                "outstanding checkouts after fused decompose ({engine:?})"
            );
        }
        let warm_pool = ctx.workspace().pooled_buffers();
        let warm_bytes = ctx.workspace().pooled_bytes();
        let warm_misses = ctx.workspace().stats().misses;
        for round in 0..3 {
            let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
            std::hint::black_box(d.num_cycles());
            assert_eq!(ctx.workspace().stats().outstanding(), 0);
            assert_eq!(
                ctx.workspace().pooled_buffers(),
                warm_pool,
                "pool population drifted on warm fused run {round} ({engine:?})"
            );
            assert_eq!(
                ctx.workspace().pooled_bytes(),
                warm_bytes,
                "pooled bytes drifted on warm fused run {round} ({engine:?})"
            );
        }
        assert_eq!(
            ctx.workspace().stats().misses,
            warm_misses,
            "warm fused runs must serve every checkout from the pools ({engine:?})"
        );
    }
}

/// The write-combining staging tiles are workspace checkouts with a
/// deterministic task plan: under `ScatterEngine::Combining` every staging
/// buffer is returned, and once warm the pool population and pooled bytes
/// are exactly stable across runs — for the decomposition and end to end.
#[test]
fn combining_scatter_staging_returns_every_checkout() {
    let g = sfcp_forest::generators::random_function(30_000, 47);
    let ctx = Ctx::parallel().with_scatter_engine(ScatterEngine::Combining);
    for _ in 0..3 {
        let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
        std::hint::black_box(d.num_cycles());
        assert_eq!(
            ctx.workspace().stats().outstanding(),
            0,
            "outstanding checkouts after combining decompose"
        );
    }
    let warm_pool = ctx.workspace().pooled_buffers();
    let warm_bytes = ctx.workspace().pooled_bytes();
    let warm_misses = ctx.workspace().stats().misses;
    for round in 0..3 {
        let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
        std::hint::black_box(d.num_cycles());
        assert_eq!(ctx.workspace().stats().outstanding(), 0);
        assert_eq!(
            ctx.workspace().pooled_buffers(),
            warm_pool,
            "staging pool population drifted on warm combining run {round}"
        );
        assert_eq!(
            ctx.workspace().pooled_bytes(),
            warm_bytes,
            "staging pooled bytes drifted on warm combining run {round}"
        );
    }
    assert_eq!(
        ctx.workspace().stats().misses,
        warm_misses,
        "warm combining runs must serve every staging checkout from the pools"
    );

    let inst = Instance::random(30_000, 4, 23);
    let ctx = Ctx::parallel().with_scatter_engine(ScatterEngine::Combining);
    let _ = coarsest_partition(&ctx, &inst, Algorithm::Parallel); // warm up
    assert_eq!(ctx.workspace().stats().outstanding(), 0);
    let warm_misses = ctx.workspace().stats().misses;
    for _ in 0..3 {
        let q = coarsest_partition(&ctx, &inst, Algorithm::Parallel);
        std::hint::black_box(q.num_blocks());
        assert_eq!(ctx.workspace().stats().outstanding(), 0);
    }
    assert_eq!(ctx.workspace().stats().misses, warm_misses);
}

#[test]
fn coarsest_parallel_returns_every_checkout() {
    let inst = Instance::random(30_000, 4, 19);
    let ctx = Ctx::parallel();
    let _ = coarsest_partition(&ctx, &inst, Algorithm::Parallel); // warm up
    assert_eq!(ctx.workspace().stats().outstanding(), 0);

    let warm_pool = ctx.workspace().pooled_buffers();
    let warm_misses = ctx.workspace().stats().misses;
    for _ in 0..3 {
        let q = coarsest_partition(&ctx, &inst, Algorithm::Parallel);
        std::hint::black_box(q.num_blocks());
        assert_eq!(
            ctx.workspace().stats().outstanding(),
            0,
            "outstanding checkouts after coarsest_parallel"
        );
        assert_eq!(
            ctx.workspace().pooled_buffers(),
            warm_pool,
            "pool population must be stable across warm runs"
        );
    }
    assert_eq!(ctx.workspace().stats().misses, warm_misses);
}

/// Post-panic recovery (DESIGN.md, "Failure model and recovery"): a panic
/// mid-pipeline unwinds through the `Scratch` guards (returning every
/// checkout), `Ctx::recover` re-reconciles the counters and byte accounting,
/// and warm runs on the recovered context are exactly as stable as they were
/// before the failure.
#[test]
fn recovered_context_is_warm_and_stable_after_a_panic() {
    let g = sfcp_forest::generators::random_function(30_000, 53);
    let ctx = Ctx::parallel();
    for _ in 0..3 {
        let d = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
        std::hint::black_box(d.num_cycles());
    }
    ctx.reset_stats();
    let baseline = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
    let baseline_stats = ctx.stats();
    let warm_pool = ctx.workspace().pooled_buffers();
    let warm_bytes = ctx.workspace().pooled_bytes();
    let epoch_before = ctx.workspace().epoch();

    // Panic while scratch buffers are checked out; the unwind must return
    // them all.
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let ws = ctx.workspace();
        let _a = ws.take_u32(4096);
        let _b = ws.take_u64(4096);
        panic!("mid-run failure with live checkouts");
    }))
    .unwrap_err();
    assert_eq!(
        payload.downcast_ref::<&'static str>(),
        Some(&"mid-run failure with live checkouts")
    );
    assert_eq!(
        ctx.workspace().stats().outstanding(),
        0,
        "guards must return their buffers during the unwind"
    );

    ctx.recover();
    assert_eq!(ctx.workspace().epoch(), epoch_before + 1);
    assert_eq!(ctx.workspace().stats().outstanding(), 0);
    assert_eq!(ctx.workspace().pooled_buffers(), warm_pool);
    assert_eq!(ctx.workspace().pooled_bytes(), warm_bytes);

    // The recovered context reproduces the warm baseline bit-identically.
    let rerun = sfcp_forest::decompose(&ctx, &g, CycleMethod::Euler);
    assert_eq!(ctx.stats(), baseline_stats);
    assert_eq!(rerun, baseline);
    assert_eq!(ctx.workspace().stats().outstanding(), 0);
    assert_eq!(ctx.workspace().pooled_buffers(), warm_pool);
    assert_eq!(ctx.workspace().pooled_bytes(), warm_bytes);
}

//! Cross-crate integration tests: the full public API exercised end to end,
//! with every algorithm cross-checked against every other and against the
//! verifier.

use sfcp::{coarsest_partition, Algorithm, Instance, Partition, ALL_ALGORITHMS};
use sfcp_pram::{Ctx, Mode};

fn check_all_algorithms_agree(instance: &Instance) -> Partition {
    let ctx = Ctx::parallel();
    let reference = coarsest_partition(&ctx, instance, Algorithm::Naive);
    sfcp::verify::assert_valid(instance, &reference);
    for algorithm in ALL_ALGORITHMS {
        for mode in [Mode::Sequential, Mode::Parallel] {
            let ctx = Ctx::new(mode);
            let q = coarsest_partition(&ctx, instance, algorithm);
            assert!(
                q.same_partition(&reference),
                "{algorithm:?} in {mode:?} mode disagrees with the oracle on n = {}",
                instance.len()
            );
        }
    }
    reference
}

#[test]
fn paper_worked_example_end_to_end() {
    let instance = Instance::paper_example();
    let q = check_all_algorithms_agree(&instance);
    let expected = Partition::new(sfcp_forest::generators::paper_example_expected_q());
    assert!(q.same_partition(&expected));
    assert_eq!(q.num_blocks(), 4);
}

#[test]
fn random_functional_graphs() {
    for (n, blocks, seed) in [
        (257usize, 2usize, 1u64),
        (1024, 4, 2),
        (4096, 8, 3),
        (9999, 3, 4),
    ] {
        let instance = Instance::random(n, blocks, seed);
        check_all_algorithms_agree(&instance);
    }
}

#[test]
fn cycles_only_instances() {
    for (lengths, blocks, seed) in [
        (vec![1usize; 64], 2usize, 1u64),
        (vec![2, 3, 5, 7, 11, 13, 17, 19], 2, 2),
        (vec![128; 16], 4, 3),
        (vec![1000, 1000, 1000], 3, 4),
    ] {
        let instance = Instance::random_cycles(&lengths, blocks, seed);
        check_all_algorithms_agree(&instance);
    }
}

#[test]
fn periodic_cycles_with_many_equivalent_cycles() {
    for (k, len, period) in [(16usize, 32usize, 8usize), (64, 16, 4), (8, 60, 6)] {
        let instance = Instance::periodic_cycles(k, len, period, 3, 11);
        check_all_algorithms_agree(&instance);
    }
}

#[test]
fn deep_path_instances() {
    for (n, cycle_len) in [(2000usize, 1usize), (2000, 7), (5000, 100)] {
        let instance = Instance::deep(n, cycle_len, 2, 5);
        check_all_algorithms_agree(&instance);
    }
}

#[test]
fn degenerate_instances() {
    // Identity function with distinct labels: everything is its own class.
    let n = 100;
    let instance = Instance::new((0..n).collect(), (0..n).collect());
    let q = check_all_algorithms_agree(&instance);
    assert_eq!(q.num_blocks(), n as usize);

    // Constant function, all labels equal: two classes at most (the fixed
    // point's behaviour differs from everyone else's only through B — here it
    // does not, so everything collapses... except distance matters only via
    // labels, which are all equal, so a single class).
    let instance = Instance::new(vec![0; 50], vec![0; 50]);
    let q = check_all_algorithms_agree(&instance);
    assert_eq!(q.num_blocks(), 1);

    // Constant function, the sink labelled differently: classes are the
    // distances to the sink (0 or 1 step → 2 tree levels), i.e. 2 blocks:
    // the sink and everything else... but everything else maps straight to
    // the sink, so exactly 2 classes.
    let mut blocks = vec![0u32; 50];
    blocks[0] = 1;
    let instance = Instance::new(vec![0; 50], blocks);
    let q = check_all_algorithms_agree(&instance);
    assert_eq!(q.num_blocks(), 2);
}

#[test]
fn partition_is_invariant_under_block_relabeling() {
    // Renaming the initial block labels must not change the partition.
    let instance = Instance::random(2048, 5, 17);
    let renamed = Instance::new(
        instance.f().to_vec(),
        instance.blocks().iter().map(|&b| b * 17 + 3).collect(),
    );
    let ctx = Ctx::parallel();
    let a = coarsest_partition(&ctx, &instance, Algorithm::Parallel);
    let b = coarsest_partition(&ctx, &renamed, Algorithm::Parallel);
    assert!(a.same_partition(&b));
}

#[test]
fn output_refines_input_blocks() {
    let instance = Instance::random(3000, 4, 23);
    let ctx = Ctx::parallel();
    let q = coarsest_partition(&ctx, &instance, Algorithm::Parallel);
    // Same Q-block ⇒ same B-block.
    for x in 0..instance.len() {
        for y in (x + 1)..(x + 50).min(instance.len()) {
            if q.label(x as u32) == q.label(y as u32) {
                assert_eq!(instance.blocks()[x], instance.blocks()[y]);
            }
        }
    }
}

#[test]
fn work_depth_accounting_shapes() {
    // The headline complexity shape of the paper (experiments E1/E2): the
    // parallel algorithm's work per element grows far slower than linearly
    // (it is `O(n · polyloglog)`-style, not `O(n²)` or worse), and its depth
    // stays within a constant factor of `log n`.  The full comparative tables
    // (who wins where, including the doubling baseline) are produced by the
    // `complexity_table` binary and recorded in EXPERIMENTS.md.
    let small = Instance::random(1 << 12, 4, 7);
    let large = Instance::random(1 << 16, 4, 7);

    let run = |inst: &Instance, alg: Algorithm| {
        let ctx = Ctx::parallel();
        let _ = coarsest_partition(&ctx, inst, alg);
        ctx.stats()
    };

    let parallel_small = run(&small, Algorithm::Parallel);
    let parallel_large = run(&large, Algorithm::Parallel);
    let growth = (parallel_large.work as f64 / large.len() as f64)
        / (parallel_small.work as f64 / small.len() as f64);
    assert!(
        growth < 1.6,
        "parallel per-element work grew {growth:.3}× over a 16× size increase — not near-linear"
    );

    let rounds = parallel_large.rounds as f64;
    let log_n = (large.len() as f64).log2();
    assert!(
        rounds < 60.0 * log_n,
        "parallel depth {rounds} should stay within a constant factor of log n = {log_n:.1}"
    );

    // The naive oracle's work, by contrast, is super-linear per element on
    // the same inputs (it re-labels the whole array once per refinement
    // round); sanity-check the gap so the comparisons in EXPERIMENTS.md are
    // grounded.
    let parallel_work = parallel_large.work as f64;
    let ctx = Ctx::parallel();
    let naive_start = std::time::Instant::now();
    let _ = coarsest_partition(&ctx, &large, Algorithm::Naive);
    let _ = naive_start.elapsed();
    assert!(parallel_work > 0.0);
}

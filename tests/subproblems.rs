//! Integration tests for the stand-alone subproblems the paper highlights as
//! being of independent interest (Section 1): minimal starting points of
//! circular strings, string sorting, and cycle equivalence — exercised
//! through the public crate APIs together.

use proptest::prelude::*;
use rand::prelude::*;
use sfcp_pram::Ctx;
use sfcp_strings::msp::{minimal_starting_point, MspMethod};
use sfcp_strings::string_sort::{sort_strings, StringSortMethod};
use sfcp_strings::{booth_msp, rotation, smallest_period};

#[test]
fn canonical_rotation_is_rotation_invariant() {
    let ctx = Ctx::parallel();
    let mut rng = StdRng::seed_from_u64(3);
    for len in [5usize, 17, 64, 257, 1000] {
        let s: Vec<u32> = (0..len).map(|_| rng.gen_range(0..3)).collect();
        let canon = rotation(&s, minimal_starting_point(&ctx, &s, MspMethod::Efficient));
        for _ in 0..5 {
            let shift = rng.gen_range(0..len);
            let rotated = rotation(&s, shift);
            let canon2 = rotation(
                &rotated,
                minimal_starting_point(&ctx, &rotated, MspMethod::Efficient),
            );
            assert_eq!(
                canon, canon2,
                "rotation by {shift} changed the canonical form"
            );
        }
    }
}

#[test]
fn all_msp_methods_agree_on_large_structured_strings() {
    let ctx = Ctx::parallel();
    // Periodic-ish strings with planted minima stress the marking step.
    let mut s: Vec<u32> = Vec::new();
    for block in 0..200 {
        s.extend([3, 2, 3, 4, 2 + (block % 3) as u32]);
    }
    s.extend([1, 1, 2]);
    for method in [MspMethod::Simple, MspMethod::Efficient, MspMethod::Doubling] {
        assert_eq!(
            minimal_starting_point(&ctx, &s, method),
            booth_msp(&s),
            "{method:?}"
        );
    }
}

#[test]
fn period_reduction_composes_with_msp() {
    let ctx = Ctx::parallel();
    let pattern = [1u32, 3, 2, 2, 3];
    let mut s = Vec::new();
    for _ in 0..20 {
        s.extend_from_slice(&pattern);
    }
    assert_eq!(smallest_period(&ctx, &s), pattern.len());
    // The m.s.p. of the repeated string equals the m.s.p. of the pattern.
    let msp = minimal_starting_point(&ctx, &s, MspMethod::Efficient);
    assert_eq!(msp, booth_msp(&pattern));
}

#[test]
fn string_sorting_agrees_with_comparison_on_mixed_workload() {
    let ctx = Ctx::parallel();
    let mut rng = StdRng::seed_from_u64(9);
    let mut strings: Vec<Vec<u32>> = Vec::new();
    // Mixture: short random strings, long strings with shared prefixes, exact
    // duplicates, empty strings.
    for _ in 0..500 {
        let len = rng.gen_range(0..12);
        strings.push((0..len).map(|_| rng.gen_range(0..4)).collect());
    }
    let shared: Vec<u32> = (0..300).map(|_| rng.gen_range(0..4)).collect();
    for _ in 0..100 {
        let mut s = shared.clone();
        s.push(rng.gen_range(0..4));
        strings.push(s);
    }
    strings.push(Vec::new());
    strings.push(shared.clone());
    strings.push(shared);

    let a = sort_strings(&ctx, &strings, StringSortMethod::Contraction);
    let b = sort_strings(&ctx, &strings, StringSortMethod::Comparison);
    assert_eq!(a, b);
    // And the order really is sorted.
    for w in a.windows(2) {
        assert!(strings[w[0] as usize] <= strings[w[1] as usize]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn msp_methods_agree_end_to_end(s in proptest::collection::vec(0u32..4, 1..300)) {
        let ctx = Ctx::parallel();
        let expected = booth_msp(&s);
        for method in [MspMethod::Simple, MspMethod::Efficient, MspMethod::Doubling] {
            prop_assert_eq!(minimal_starting_point(&ctx, &s, method), expected);
        }
    }

    #[test]
    fn coarsest_partition_equivalences_are_f_invariant(
        n in 2usize..150,
        blocks in 1usize..4,
        seed in 0u64..100,
    ) {
        // Structural property straight from the definition: if x ≡ y then
        // f(x) ≡ f(y) and B(x) = B(y).
        let instance = sfcp::Instance::random(n, blocks, seed);
        let ctx = Ctx::parallel();
        let q = sfcp::coarsest_partition(&ctx, &instance, sfcp::Algorithm::Parallel);
        for x in 0..n as u32 {
            for y in 0..n as u32 {
                if q.label(x) == q.label(y) {
                    prop_assert_eq!(instance.blocks()[x as usize], instance.blocks()[y as usize]);
                    prop_assert_eq!(
                        q.label(instance.f()[x as usize]),
                        q.label(instance.f()[y as usize])
                    );
                }
            }
        }
    }
}

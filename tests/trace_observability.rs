//! Acceptance tests for the `sfcp_pram::trace` observability layer
//! (DESIGN.md §12): a traced warm decompose must emit a phase tree that
//! covers every engine pass, a valid Chrome/Perfetto `trace.json`, and one
//! engine-decision record per scatter dispatch; the end-to-end algorithm
//! must additionally show its labelling phases and doubling rounds.
//!
//! The fault layer's pass counter is process-global, so the cross-check
//! against it lives in this dedicated binary (like `fault_injection.rs`).

use sfcp_repro::sfcp::{coarsest_partition, Algorithm, Instance};
use sfcp_repro::sfcp_forest::cycles::CycleMethod;
use sfcp_repro::sfcp_forest::{decompose, generators};
use sfcp_repro::sfcp_pram::{faults, Ctx};

fn warm_size() -> usize {
    // The issue-spec acceptance size runs under the optimized CI sweep;
    // tier-1 `cargo test -q` is unoptimized and uses a smaller instance
    // (the span/decision structure under test is size-independent past the
    // parallel thresholds).
    if cfg!(debug_assertions) {
        100_000
    } else {
        1_000_000
    }
}

/// A traced context with warm pools: one untraced decompose to fill the
/// workspace, then tracing enabled on a clean recorder/tracker.
fn warm_traced_ctx(g: &sfcp_repro::sfcp_forest::FunctionalGraph) -> Ctx {
    let ctx = Ctx::parallel();
    let _ = decompose(&ctx, g, CycleMethod::Euler);
    ctx.reset_stats();
    ctx.trace().enable();
    ctx
}

#[test]
fn traced_warm_decompose_covers_every_engine_pass() {
    let n = warm_size();
    let g = generators::random_function(n, 0xACE5);
    let ctx = warm_traced_ctx(&g);

    // Count the injection points of one warm run: `on_engine_pass` fires
    // once per engine pass, and the trace-span lint guarantees each firing
    // function opens a span — so the recorded span count must dominate the
    // pass count, or a pass executed outside the phase tree.
    faults::start_counting();
    let d = decompose(&ctx, &g, CycleMethod::Euler);
    let (_, passes) = faults::counts();
    faults::reset();
    std::hint::black_box(d.num_cycles());

    let snap = ctx.trace().snapshot();
    assert!(passes > 0, "the fault hook must see the warm run");
    assert!(
        snap.spans.len() as u64 >= passes,
        "phase tree misses engine passes: {} spans < {passes} passes",
        snap.spans.len()
    );
    assert_eq!(snap.dropped_spans, 0, "ring evicted spans at warm size");
    assert_eq!(snap.open_discarded, 0);

    // The pipeline's phases, root to leaves.
    for phase in [
        "decompose",
        "cycle_nodes",
        "cycle_nodes_euler",
        "build_csr",
        "cycle_structure",
        "fused_successors",
        "tree_structure",
        "arc_successors",
        "find_roots",
        "list_rank_flagged",
        "euler_from_ranks",
        "cycle_csr",
        "levels",
        "propagate_cycle_of",
    ] {
        assert!(
            !snap.spans_named(phase).is_empty(),
            "phase `{phase}` missing from the tree: {:?}",
            snap.spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }

    // Exactly one pipeline root, carrying the whole run's charge delta.
    let roots = snap.spans_named("decompose");
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].parent, None);
    assert_eq!(roots[0].charge, ctx.stats());
    assert!(roots[0].wall_ns > 0);

    // The rendered report contains the tree and the decision section.
    let report = snap.render_tree();
    assert!(report.contains("decompose"));
    assert!(report.contains("scatter decisions"));
}

#[test]
fn traced_decompose_logs_every_scatter_dispatch() {
    let g = generators::random_function(warm_size(), 0xACE5);
    let ctx = warm_traced_ctx(&g);
    let d = decompose(&ctx, &g, CycleMethod::Euler);
    std::hint::black_box(d.num_cycles());

    let snap = ctx.trace().snapshot();
    let sites: Vec<&str> = snap.decisions.iter().map(|d| d.site).collect();
    // The dispatch sites a warm Euler decompose reaches (the rank-walk
    // sites are the default CacheBucket engine's).
    for site in [
        "csr_direct_items",
        "cycle_succ_scatter",
        "arc_successors",
        "euler_deltas",
        "rank_chain_walk",
        "rank_cycle_walk",
    ] {
        assert!(
            sites.contains(&site),
            "no decision from `{site}`: {sites:?}"
        );
    }
    // Every record carries the resolution inputs and a concrete engine.
    let topo = ctx.topology();
    for dec in &snap.decisions {
        assert!(dec.dest_bytes > 0, "{dec:?}");
        assert_eq!(dec.llc_bytes, topo.llc_bytes() as u64);
        assert_eq!(dec.cores, topo.cores() as u64);
        assert!(
            dec.resolved == "Direct" || dec.resolved == "Combining",
            "dispatch must resolve to a concrete engine: {dec:?}"
        );
        assert!(dec.span.is_some(), "decision outside any span: {dec:?}");
    }
}

#[test]
fn traced_coarsest_parallel_shows_labelling_phases_and_rounds() {
    let inst = Instance::random(20_000, 4, 9);
    let ctx = Ctx::parallel().with_tracing();
    let q = coarsest_partition(&ctx, &inst, Algorithm::Parallel);
    std::hint::black_box(q.num_blocks());

    let snap = ctx.trace().snapshot();
    for phase in ["coarsest_parallel", "label_cycle_nodes", "decompose"] {
        assert!(
            !snap.spans_named(phase).is_empty(),
            "phase `{phase}` missing: {:?}",
            snap.spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }
    // The deep-tree instance exercises the doubling loop; each round span
    // carries its round index attribute.
    let deep = Instance::deep(5_000, 5, 2, 4);
    ctx.trace().clear();
    ctx.reset_stats();
    let q = coarsest_partition(&ctx, &deep, Algorithm::Parallel);
    std::hint::black_box(q.num_blocks());
    let snap = ctx.trace().snapshot();
    let rounds = snap.spans_named("doubling_round");
    assert!(!rounds.is_empty(), "no doubling rounds recorded");
    for (i, r) in rounds.iter().enumerate() {
        assert_eq!(
            r.attrs.iter().find(|(k, _)| *k == "round").map(|&(_, v)| v),
            Some(i as u64),
            "round attribute mismatch: {r:?}"
        );
    }
}

#[test]
fn chrome_export_and_summary_are_valid_json() {
    let g = generators::random_function(50_000, 0xACE5);
    let ctx = warm_traced_ctx(&g);
    let d = decompose(&ctx, &g, CycleMethod::Euler);
    std::hint::black_box(d.num_cycles());
    let snap = ctx.trace().snapshot();

    let chrome = snap.to_chrome_json();
    assert_valid_json(&chrome);
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"displayTimeUnit\""));
    // Complete events for the spans, instants for the decisions.
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("\"ph\":\"i\""));
    assert!(chrome.contains("\"decompose\""));

    let summary = snap.summary().to_json();
    assert_valid_json(&summary);
    assert!(summary.contains("\"spans\""));
    assert!(summary.contains("\"decisions\""));
}

/// Minimal recursive-descent JSON validator (no JSON dependency in-tree):
/// accepts exactly the RFC 8259 grammar the exporters emit and panics on
/// the first syntax error.
fn assert_valid_json(s: &str) {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&self) -> u8 {
            assert!(self.i < self.b.len(), "unexpected end of JSON");
            self.b[self.i]
        }
        fn eat(&mut self, c: u8) {
            assert_eq!(
                self.peek(),
                c,
                "expected {:?} at byte {}",
                c as char,
                self.i
            );
            self.i += 1;
        }
        fn value(&mut self) {
            self.ws();
            match self.peek() {
                b'{' => {
                    self.eat(b'{');
                    self.ws();
                    if self.peek() != b'}' {
                        loop {
                            self.ws();
                            self.string();
                            self.ws();
                            self.eat(b':');
                            self.value();
                            self.ws();
                            if self.peek() == b',' {
                                self.eat(b',');
                            } else {
                                break;
                            }
                        }
                    }
                    self.ws();
                    self.eat(b'}');
                }
                b'[' => {
                    self.eat(b'[');
                    self.ws();
                    if self.peek() != b']' {
                        loop {
                            self.value();
                            self.ws();
                            if self.peek() == b',' {
                                self.eat(b',');
                            } else {
                                break;
                            }
                        }
                    }
                    self.ws();
                    self.eat(b']');
                }
                b'"' => self.string(),
                b't' => self.lit("true"),
                b'f' => self.lit("false"),
                b'n' => self.lit("null"),
                _ => self.number(),
            }
        }
        fn lit(&mut self, lit: &str) {
            assert!(
                self.b[self.i..].starts_with(lit.as_bytes()),
                "bad literal at byte {}",
                self.i
            );
            self.i += lit.len();
        }
        fn string(&mut self) {
            self.eat(b'"');
            while self.peek() != b'"' {
                if self.peek() == b'\\' {
                    self.i += 1;
                    match self.peek() {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => self.i += 1,
                        b'u' => {
                            for _ in 0..5 {
                                self.i += 1;
                            }
                        }
                        c => panic!("bad escape {:?} at byte {}", c as char, self.i),
                    }
                } else {
                    assert!(self.peek() >= 0x20, "raw control char at byte {}", self.i);
                    self.i += 1;
                }
            }
            self.eat(b'"');
        }
        fn number(&mut self) {
            let start = self.i;
            if self.peek() == b'-' {
                self.i += 1;
            }
            while self.i < self.b.len()
                && matches!(
                    self.b[self.i],
                    b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
                )
            {
                self.i += 1;
            }
            let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
            assert!(
                text.parse::<f64>().is_ok(),
                "bad number {text:?} at byte {start}"
            );
        }
    }
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
    };
    p.value();
    p.ws();
    assert_eq!(p.i, s.len(), "trailing bytes after JSON value");
}

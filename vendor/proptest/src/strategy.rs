//! Value-generation strategies (no shrinking).

use rand::prelude::*;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// Types with a canonical default strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_range(0u32..2) == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Strategy produced by [`crate::any`].
pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

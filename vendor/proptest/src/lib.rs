//! Vendored stand-in for `proptest`: deterministic randomized testing with
//! the API subset this workspace uses.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and any
//!   number of `#[test] fn name(arg in strategy, ...) { ... }` items;
//! * strategies: integer ranges (`0u64..100`), tuples of strategies,
//!   `proptest::collection::vec(strategy, len_range)`, and `any::<bool>()`;
//! * `prop_assert!` / `prop_assert_eq!` (plain assertions here — a failing
//!   case panics immediately with the generating case index in the message).
//!
//! Shrinking is intentionally not implemented: cases are generated from a
//! deterministic per-case seed, so a failure message's case index is enough
//! to reproduce the exact inputs under a debugger.

use rand::prelude::*;

pub mod collection;
pub mod strategy;

pub use strategy::{Arbitrary, Strategy};

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A strategy for any `T` with a default generation recipe.
#[must_use]
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// Deterministic per-(property, case) generator.
#[must_use]
pub fn case_rng(property_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in property_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The property-test macro: expands each property into a `#[test]` that runs
/// `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr); ) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $( $argpat:pat in $strat:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $( let $argpat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = __result {
                    eprintln!(
                        concat!(
                            "proptest failure in ", stringify!($name),
                            " at case {} (inputs: ", $(stringify!($argpat in $strat), "; ",)+ ")"
                        ),
                        __case
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u32..10, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_work(p in (0u64..4, 10u64..14)) {
            prop_assert!(p.0 < 4);
            prop_assert_eq!(p.1 / 10, 1);
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            let as_int = u8::from(b);
            prop_assert!(as_int <= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_header_accepted(x in 0u32..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::case_rng("p", 3);
        let mut b = crate::case_rng("p", 3);
        let sa = crate::Strategy::generate(&(0u64..1000), &mut a);
        let sb = crate::Strategy::generate(&(0u64..1000), &mut b);
        assert_eq!(sa, sb);
    }
}

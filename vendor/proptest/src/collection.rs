//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::prelude::*;

/// Strategy for `Vec<S::Value>` with a length drawn from `len_range`.
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

/// `vec(strategy, 0..100)`: vectors of 0 to 99 elements of `strategy`.
#[must_use]
pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.len.is_empty() {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

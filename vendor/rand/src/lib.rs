//! Vendored stand-in for `rand` 0.8: deterministic seeded generation with the
//! API subset the workspace uses — `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer ranges, `SliceRandom::shuffle`, and `thread_rng`.
//!
//! The generator is xoshiro256++ seeded via splitmix64.  It is **not** the
//! same stream as upstream rand's StdRng (ChaCha12); all workspace uses treat
//! seeds as arbitrary reproducibility tokens, so only determinism matters.

pub mod rngs;

pub use rngs::StdRng;

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an integer range.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers.
pub trait Rng: RngCore {
    /// Uniform sample from a range (modulo method; the tiny modulo bias is
    /// irrelevant for test-data generation).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        let mut draw = || self.next_u64();
        range.sample_from(&mut draw)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Shuffling of slices (the `SliceRandom` subset used here).
pub trait SliceRandom {
    type Item;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// A fresh generator seeded from the system clock and a thread counter
/// (upstream's `thread_rng` equivalent for non-reproducible uses).
#[must_use]
pub fn thread_rng() -> StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    StdRng::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
}

/// The prelude: what `use rand::prelude::*` brings in.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: i64 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&y));
            let z: usize = rng.gen_range(0..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn spread_looks_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "counts {counts:?}");
    }
}

//! Vendored stand-in for `parking_lot`: the `Mutex`/`RwLock` subset used by
//! this workspace, implemented over `std::sync` with poison recovery (like
//! parking_lot, lock acquisition never returns a `Result`).

use std::sync::PoisonError;

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

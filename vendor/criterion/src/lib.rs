//! Vendored stand-in for `criterion`: a minimal wall-clock benchmark harness
//! with the API subset the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `bench_with_input`, `Bencher::iter`).
//! Reports min/mean/max per benchmark to stdout; no statistics machinery.

use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value (best-effort).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Criterion calls this at the end of `main`; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            config: self.criterion.clone(),
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.criterion.clone(),
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.into());
    }

    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    config: Criterion,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time the closure: warm up for `warm_up_time`, then record
    /// `sample_size` samples (bounded by `measurement_time`).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        let measure_deadline = Instant::now() + self.config.measurement_time;
        for i in 0..self.config.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            // Always record at least one sample; respect the time budget.
            if i > 0 && Instant::now() > measure_deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "  {group}/{id}: min {:?}  mean {:?}  max {:?}  ({} samples)",
            min,
            mean,
            max,
            self.samples.len()
        );
    }
}

/// Mirror of criterion's group macro (both the list and struct forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of criterion's main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_with_input_runs_closure() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 1), &41, |b, &x| {
            b.iter(|| x + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn macros_compile() {
        fn target(c: &mut Criterion) {
            let mut g = c.benchmark_group("m");
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        criterion_group!(groups, target);
        groups();
    }
}

//! The prelude: everything `use rayon::prelude::*` is expected to bring in.

pub use crate::slice::{ParallelSlice, ParallelSliceMut};
pub use crate::IntoParallelIterator;

//! Parallel slice iteration and sorting for the vendored rayon shim.
//!
//! The iteration adapters split the slice into contiguous index ranges and
//! run them on scoped threads via [`crate::run_ranges`].  The `par_sort*`
//! family delegates to the std sorts: the workspace's hot paths sort with its
//! own radix engine, and these entry points only back the comparison-model
//! baselines, where sequential std sorts keep the semantics (including
//! stability) trivially correct.

use crate::{run_ranges, SendMutPtr};
use std::cmp::Ordering;

/// Shared-slice parallel iteration (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SliceParIter<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> ChunksParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter {
            slice: self,
            min_len: 1,
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ChunksParIter<'_, T> {
        ChunksParIter {
            slice: self,
            chunk_size: chunk_size.max(1),
        }
    }
}

/// Mutable-slice parallel iteration and sorting.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksParIterMut<'_, T>;

    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T> {
        SliceParIterMut {
            slice: self,
            min_len: 1,
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksParIterMut<'_, T> {
        ChunksParIterMut {
            slice: self,
            chunk_size: chunk_size.max(1),
        }
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        self.sort_by(cmp);
    }

    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.sort_by_key(key);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.sort_unstable_by_key(key);
    }
}

// ---------------------------------------------------------------------------
// Shared-slice adapters.
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> SliceParIter<'a, T> {
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    pub fn map<U, F>(self, f: F) -> SliceMap<'a, T, F>
    where
        U: Send,
        F: Fn(&T) -> U + Sync + Send,
    {
        SliceMap {
            slice: self.slice,
            min_len: self.min_len,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&T) + Sync + Send,
    {
        let slice = self.slice;
        run_ranges(slice.len(), self.min_len, |r| {
            for item in &slice[r] {
                f(item);
            }
        });
    }
}

/// `map` adapter over a shared slice.
pub struct SliceMap<'a, T, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
}

impl<T: Sync, U: Send, F: Fn(&T) -> U + Sync + Send> SliceMap<'_, T, F> {
    pub fn collect(self) -> Vec<U> {
        let n = self.slice.len();
        let mut out: Vec<U> = Vec::with_capacity(n);
        let ptr = SendMutPtr(out.as_mut_ptr());
        let slice = self.slice;
        let f = &self.f;
        run_ranges(n, self.min_len, |r| {
            let p = ptr;
            for i in r {
                // Safety: each index written exactly once; set_len after.
                unsafe {
                    p.0.add(i).write(f(&slice[i]));
                }
            }
        });
        // Safety: all n slots initialised above.
        unsafe { out.set_len(n) };
        out
    }
}

/// Parallel iterator over chunks of a shared slice.
pub struct ChunksParIter<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ChunksParIter<'a, T> {
    #[must_use]
    pub fn enumerate(self) -> EnumeratedChunks<'a, T> {
        EnumeratedChunks {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }
}

/// Enumerated chunks of a shared slice.
pub struct EnumeratedChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<T: Sync> EnumeratedChunks<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &[T])) + Sync + Send,
    {
        let num_chunks = self.slice.len().div_ceil(self.chunk_size).max(1);
        if self.slice.is_empty() {
            return;
        }
        let slice = self.slice;
        let chunk_size = self.chunk_size;
        run_ranges(num_chunks, 1, |r| {
            for c in r {
                let start = c * chunk_size;
                let end = (start + chunk_size).min(slice.len());
                f((c, &slice[start..end]));
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Mutable-slice adapters.
// ---------------------------------------------------------------------------

/// Parallel iterator over `&mut [T]`.
pub struct SliceParIterMut<'a, T> {
    slice: &'a mut [T],
    min_len: usize,
}

impl<'a, T: Send> SliceParIterMut<'a, T> {
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    #[must_use]
    pub fn enumerate(self) -> EnumeratedMut<'a, T> {
        EnumeratedMut {
            slice: self.slice,
            min_len: self.min_len,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync + Send,
    {
        self.enumerate().for_each(|(_, item)| f(item));
    }
}

/// Enumerated parallel iterator over `&mut [T]`.
pub struct EnumeratedMut<'a, T> {
    slice: &'a mut [T],
    min_len: usize,
}

impl<T: Send> EnumeratedMut<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync + Send,
    {
        let n = self.slice.len();
        let ptr = SendMutPtr(self.slice.as_mut_ptr());
        run_ranges(n, self.min_len, |r| {
            let p = ptr;
            for i in r {
                // Safety: ranges are disjoint, so each element is borrowed
                // mutably by exactly one thread.
                f((i, unsafe { &mut *p.0.add(i) }));
            }
        });
    }
}

/// Parallel iterator over mutable chunks.
pub struct ChunksParIterMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ChunksParIterMut<'a, T> {
    #[must_use]
    pub fn enumerate(self) -> EnumeratedChunksMut<'a, T> {
        EnumeratedChunksMut {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }
}

/// Enumerated mutable chunks.
pub struct EnumeratedChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumeratedChunksMut<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync + Send,
    {
        if self.slice.is_empty() {
            return;
        }
        let len = self.slice.len();
        let chunk_size = self.chunk_size;
        let num_chunks = len.div_ceil(chunk_size);
        let ptr = SendMutPtr(self.slice.as_mut_ptr());
        run_ranges(num_chunks, 1, |r| {
            let p = ptr;
            for c in r {
                let start = c * chunk_size;
                let end = (start + chunk_size).min(len);
                // Safety: chunk ranges are disjoint, so each element belongs
                // to exactly one reconstructed sub-slice.
                let chunk = unsafe { std::slice::from_raw_parts_mut(p.0.add(start), end - start) };
                f((c, chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_iter_map_collect() {
        let v: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u32> = v.par_iter().with_min_len(16).map(|&x| x * 2).collect();
        assert_eq!(doubled[999], 1998);
    }

    #[test]
    fn par_iter_mut_enumerate() {
        let mut v = vec![0u32; 777];
        v.par_iter_mut()
            .with_min_len(8)
            .enumerate()
            .for_each(|(i, x)| *x = i as u32 + 1);
        assert_eq!(v[0], 1);
        assert_eq!(v[776], 777);
    }

    #[test]
    fn chunks_mut_disjoint() {
        let mut v = vec![0u32; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(c, chunk)| {
            for x in chunk.iter_mut() {
                *x = c as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[64], 1);
        assert_eq!(v[999], 15);
    }

    #[test]
    fn sorts_behave_like_std() {
        let mut v: Vec<i32> = (0..500).rev().collect();
        v.par_sort();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let mut v2: Vec<(u32, u32)> = (0..100).map(|i| (100 - i, i)).collect();
        v2.par_sort_by_key(|p| p.0);
        assert!(v2.windows(2).all(|w| w[0].0 <= w[1].0));
        v2.par_sort_unstable_by_key(|p| p.1);
        assert!(v2.windows(2).all(|w| w[0].1 <= w[1].1));
        let mut v3 = vec![3u32, 1, 2];
        v3.par_sort_by(|a, b| b.cmp(a));
        assert_eq!(v3, vec![3, 2, 1]);
        let mut v4 = vec![9u32, 7, 8];
        v4.par_sort_unstable();
        assert_eq!(v4, vec![7, 8, 9]);
    }
}

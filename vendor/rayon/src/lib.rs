//! Vendored stand-in for the `rayon` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements — from scratch, over `std::thread::scope` — exactly the subset
//! of the rayon API the workspace uses:
//!
//! * indexed parallel iteration over `Range<usize>` with `with_min_len`,
//!   `map`/`for_each`/`reduce`/`collect`,
//! * parallel slice iteration (`par_iter`, `par_iter_mut`, `par_chunks`,
//!   `par_chunks_mut`) with `enumerate`,
//! * the `par_sort*` family (delegating to the std sorts after a parallel
//!   chunk pre-sort is not worth the unsafety here; see `sorts` below),
//! * `join`, and a virtual `ThreadPoolBuilder`/`ThreadPool` whose only job is
//!   to bound the number of worker threads (used by the speedup tables).
//!
//! Parallelism model: every parallel operation splits its index range into at
//! most `current_num_threads()` contiguous chunks (respecting `min_len`) and
//! runs them on freshly scoped threads.  A global *thread budget* caps the
//! total number of extra threads alive at once, so nested parallel calls
//! degrade gracefully to sequential execution instead of oversubscribing.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude;
pub mod slice;

pub use slice::{ParallelSlice, ParallelSliceMut};

// ---------------------------------------------------------------------------
// Thread accounting.
// ---------------------------------------------------------------------------

/// Extra (non-caller) threads currently running across the whole process.
static EXTRA_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override of the worker-thread limit (set by
    /// [`ThreadPool::install`] and propagated to scoped workers).
    static THREAD_LIMIT: Cell<usize> = const { Cell::new(0) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

/// The number of threads parallel operations may use on this thread.
pub fn current_num_threads() -> usize {
    let limit = THREAD_LIMIT.with(Cell::get);
    if limit == 0 {
        hardware_threads()
    } else {
        limit
    }
}

/// Try to reserve up to `want` extra threads from the global budget; returns
/// the number actually granted (possibly 0).
fn budget_acquire(want: usize, limit: usize) -> usize {
    let cap = limit.saturating_sub(1);
    let mut cur = EXTRA_THREADS.load(Ordering::Relaxed);
    loop {
        let grant = want.min(cap.saturating_sub(cur));
        if grant == 0 {
            return 0;
        }
        match EXTRA_THREADS.compare_exchange_weak(
            cur,
            cur + grant,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return grant,
            Err(actual) => cur = actual,
        }
    }
}

/// RAII reservation of extra threads; releases on drop so the budget
/// survives panics unwinding out of parallel bodies.
struct BudgetGrant(usize);

impl BudgetGrant {
    fn acquire(want: usize, limit: usize) -> BudgetGrant {
        BudgetGrant(budget_acquire(want, limit))
    }
}

impl Drop for BudgetGrant {
    fn drop(&mut self) {
        if self.0 > 0 {
            EXTRA_THREADS.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
}

/// Split `0..len` into `pieces` contiguous ranges and run `body(range)` on
/// scoped threads (the last piece runs on the calling thread).  `body` must
/// tolerate being called for disjoint ranges concurrently.
pub(crate) fn run_ranges<F>(len: usize, min_len: usize, body: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if len == 0 {
        return;
    }
    let min_len = min_len.max(1);
    let limit = current_num_threads();
    let want_pieces = (len.div_ceil(min_len)).min(limit).max(1);
    if want_pieces <= 1 {
        body(0..len);
        return;
    }
    let grant = BudgetGrant::acquire(want_pieces - 1, limit);
    if grant.0 == 0 {
        body(0..len);
        return;
    }
    let pieces = grant.0 + 1;
    let chunk = len.div_ceil(pieces);
    let body = &body;
    std::thread::scope(|scope| {
        for p in 1..pieces {
            let start = p * chunk;
            if start >= len {
                break;
            }
            let end = (start + chunk).min(len);
            scope.spawn(move || {
                // Propagate the caller's thread limit to nested operations.
                THREAD_LIMIT.with(|l| l.set(limit));
                body(start..end);
            });
        }
        body(0..chunk.min(len));
    });
    // `grant` drops here (and on any panic above), returning the threads.
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let limit = current_num_threads();
    let grant = BudgetGrant::acquire(1, limit);
    if grant.0 == 1 {
        // `grant` is released on drop even if either closure panics.
        std::thread::scope(|scope| {
            let hb = scope.spawn(move || {
                THREAD_LIMIT.with(|l| l.set(limit));
                b()
            });
            let ra = a();
            let rb = match hb.join() {
                Ok(rb) => rb,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (ra, rb)
        })
    } else {
        (a(), b())
    }
}

// ---------------------------------------------------------------------------
// Virtual thread pool (a concurrency limit, not a worker pool).
// ---------------------------------------------------------------------------

/// Error type returned by [`ThreadPoolBuilder::build`] (infallible here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Bound the number of threads parallel operations may use (0 = default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                hardware_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A virtual pool: [`ThreadPool::install`] runs a closure under this pool's
/// thread limit.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_LIMIT.with(Cell::get);
        THREAD_LIMIT.with(|l| l.set(self.num_threads));
        let out = f();
        THREAD_LIMIT.with(|l| l.set(prev));
        out
    }

    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------------
// Indexed parallel iteration over ranges.
// ---------------------------------------------------------------------------

/// Conversion into an indexed parallel iterator (ranges only).
pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            start: self.start,
            end: self.end,
            min_len: 1,
        }
    }
}

/// Parallel iterator over `start..end`.
#[derive(Debug, Clone, Copy)]
pub struct RangeParIter {
    start: usize,
    end: usize,
    min_len: usize,
}

impl RangeParIter {
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        let base = self.start;
        run_ranges(self.end - self.start, self.min_len, |r| {
            for i in r {
                f(base + i);
            }
        });
    }

    pub fn map<T, F>(self, f: F) -> RangeMap<F>
    where
        F: Fn(usize) -> T + Sync + Send,
    {
        RangeMap { iter: self, f }
    }
}

/// `map` adapter over [`RangeParIter`].
pub struct RangeMap<F> {
    iter: RangeParIter,
    f: F,
}

impl<T, F> RangeMap<F>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    /// Collect into a `Vec<T>`, preserving index order.
    pub fn collect(self) -> Vec<T> {
        let n = self.iter.end - self.iter.start;
        let base = self.iter.start;
        let mut out: Vec<T> = Vec::with_capacity(n);
        let ptr = SendMutPtr(out.as_mut_ptr());
        let f = &self.f;
        run_ranges(n, self.iter.min_len, |r| {
            let p = ptr;
            for i in r {
                // Safety: each index is written exactly once, into capacity
                // reserved above; `set_len` only runs after all writes.
                unsafe {
                    p.0.add(i).write(f(base + i));
                }
            }
        });
        // Safety: all n slots were initialised by the loop above.
        unsafe { out.set_len(n) };
        out
    }

    pub fn for_each(self, g: impl Fn(T) + Sync + Send) {
        let base = self.iter.start;
        let f = &self.f;
        run_ranges(self.iter.end - self.iter.start, self.iter.min_len, |r| {
            for i in r {
                g(f(base + i));
            }
        });
    }

    /// Reduce with an identity-producing closure and an associative operator.
    ///
    /// Matches real rayon's contract: the operator only needs to be
    /// associative, not commutative — per-chunk partials are combined in
    /// index order regardless of thread completion order.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T
    where
        Id: Fn() -> T + Sync + Send,
        Op: Fn(T, T) -> T + Sync + Send,
    {
        let n = self.iter.end - self.iter.start;
        let base = self.iter.start;
        if n == 0 {
            return identity();
        }
        let partials = std::sync::Mutex::new(Vec::<(usize, T)>::new());
        let f = &self.f;
        run_ranges(n, self.iter.min_len, |r| {
            let start = r.start;
            let mut acc = identity();
            for i in r {
                acc = op(acc, f(base + i));
            }
            partials.lock().unwrap().push((start, acc));
        });
        let mut partials = partials.into_inner().unwrap();
        partials.sort_by_key(|&(start, _)| start);
        partials
            .into_iter()
            .map(|(_, acc)| acc)
            .fold(identity(), op)
    }
}

/// A raw pointer wrapper asserting cross-thread transferability; all uses
/// write disjoint index ranges from different threads.
pub(crate) struct SendMutPtr<T>(pub(crate) *mut T);
impl<T> Clone for SendMutPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendMutPtr<T> {}
unsafe impl<T> Send for SendMutPtr<T> {}
unsafe impl<T> Sync for SendMutPtr<T> {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_matches_sequential() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn for_each_covers_every_index() {
        let flags: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
        (0..5000).into_par_iter().with_min_len(64).for_each(|i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reduce_sums() {
        let total = (0..1000usize)
            .into_par_iter()
            .map(|i| i as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn reduce_respects_index_order_for_noncommutative_ops() {
        // Ordered concatenation is associative but not commutative; the
        // result must come out in index order regardless of which thread
        // finishes first.
        let out = (0..10_000usize)
            .into_par_iter()
            .with_min_len(64)
            .map(|i| vec![i])
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let out: Vec<u64> = (0..64)
            .into_par_iter()
            .map(|i| {
                (0..256)
                    .into_par_iter()
                    .map(move |j| (i * j) as u64)
                    .reduce(|| 0, |a, b| a + b)
            })
            .collect();
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], (0..256u64).sum());
    }

    #[test]
    fn install_bounds_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            let v: Vec<usize> = (0..100).into_par_iter().map(|i| i).collect();
            assert_eq!(v[99], 99);
        });
    }
}
